"""E12 — Theorem 4 / Claims 5–6: ε-AA with ID-called binary consensus.

Paper shape: fixing the call function β, the closure restricted to the
majority β-side is liberal (2ε)-AA (Claim 6) — halving the participants
while doubling ε — giving the bound min{⌈log₂ 1/ε⌉, ⌈log₂ n⌉ − 1}.  On
mixed β-sides the collapse fails (the box helps), which the bench also
demonstrates, together with the bound's closed form across (n, ε).
"""

from repro.analysis import ExperimentRow, render_table
from repro.core import ceil_log
from repro.experiments import reproduce_theorem4


def test_theorem4_bc_aa(benchmark, record_table):
    data = benchmark.pedantic(reproduce_theorem4, rounds=1, iterations=1)

    assert data["mismatches"] == 0
    assert data["mixed_escapes"]

    rows = [
        ExperimentRow(
            f"majority side S' of β (|S|=5)",
            "|S'| ≥ |S|/2, here {1,3,4}",
            str(data["majority_side"]),
            data["majority_side"] == [1, 3, 4],
        ),
        ExperimentRow(
            "β-closure on S' = liberal 2ε-AA (Claim 6)",
            "yes",
            f"{data['checked'] - data['mismatches']}/{data['checked']} windows",
            data["mismatches"] == 0,
        ),
        ExperimentRow(
            "mixed β-side escapes the 2ε collapse",
            "yes (box helps there)",
            str(data["mixed_escapes"]),
            data["mixed_escapes"],
        ),
    ]
    for n, eps, bound in data["bounds"]:
        expected = min(ceil_log(2, 1 / eps), ceil_log(2, n) - 1)
        assert bound == expected
        rows.append(
            ExperimentRow(
                f"n={n}, ε={eps}",
                f"min(⌈log₂ 1/ε⌉, ⌈log₂ n⌉−1) = {expected}",
                str(bound),
                bound == expected,
            )
        )
    record_table(
        "E12_theorem4",
        render_table(
            "E12 / Theorem 4 — ε-AA with ID-called binary consensus", rows
        ),
    )
