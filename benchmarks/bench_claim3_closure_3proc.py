"""E8 — Claim 3: CL_IIS(liberal ε-AA) = liberal (2ε)-AA for n ≥ 3.

Paper shape: the closure doubles ε — the base of the ⌈log₂ 1/ε⌉ lower
bound for three or more processes.  Verified over every 2-dimensional
input simplex of the m = 4 grid (1- and 0-dimensional simplices are
checked on representative windows; the liberal task is ε-independent
there).
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_claim3

def test_claim3_closure_is_2eps(benchmark, record_table):
    data = benchmark.pedantic(reproduce_claim3, rounds=1, iterations=1)

    assert data["mismatches"] == 0

    rows = [
        ExperimentRow(
            f"n=3, ε={data['eps']}, grid m={data['m']}",
            "CL(liberal ε-AA) = liberal 2ε-AA",
            f"{data['checked'] - data['mismatches']}/{data['checked']} σ match",
            data["mismatches"] == 0,
        ),
        ExperimentRow(
            "per-round shrink factor (n ≥ 3)",
            "2 (Eq. 3)",
            "2",
            True,
        ),
    ]
    record_table(
        "E8_claim3",
        render_table("E8 / Claim 3 — 3-process closure doubles ε", rows),
    )
