"""BENCH (bitmask core) — facet pruning and containment, masks vs objects.

The bitmask-native topology core claims that the two operations
dominating protocol-complex assembly — inclusion-maximality pruning and
face-membership tests — are integer sweeps instead of object-set
algebra.  This harness times both against the retained seed
implementations (:mod:`repro.topology.reference`) on a real ``13^t``
IIS protocol complex and asserts the acceptance bar of the bitmask-core
PR: **at least 3× on each**.

* *pruning*: the candidate family is every facet of ``P^(t)(σ)`` plus
  every proper face — the merge-heavy shape ``Ξ`` produces each round.
  Mask side prunes encoded masks (the in-situ operation behind
  ``proj``/``union``/``apply_complex``); reference side runs the seed
  frozenset-bucket pass over the same simplices.
* *containment*: each repeat starts from a fresh facet family, builds
  the face index (submask walk vs eager face materialization) and
  answers a fixed probe batch.

Both sides are timed interleaved and the per-side minimum over repeats
is kept, so clock drift hits them equally.  The round count is
``REPRO_BENCH_BITMASK_ROUNDS`` (default 2 → 169 facets; CI smoke uses
the same), and the record lands in
``benchmarks/results/BENCH_bitmask_core.json``.
"""

from __future__ import annotations

import os
import time

from repro.models import ImmediateSnapshotModel
from repro.models.protocol import ProtocolOperator
from repro.topology import Simplex, SimplicialComplex
from repro.topology import reference
from repro.topology.complex import _prune_masks

ROUNDS = int(os.environ.get("REPRO_BENCH_BITMASK_ROUNDS", "2"))

#: The acceptance bar from the bitmask-core PR.
MIN_SPEEDUP = 3.0

#: Interleaved timing repeats; the minimum per side is kept.
REPEATS = 7

#: Membership probes per containment repeat — few enough that the face
#: *index build* (the part the bitmask core accelerates) stays the
#: dominant cost, as it is in the closure/solvability sweeps.
PROBES = 32


def _triangle() -> Simplex:
    return Simplex((i, f"x{i}") for i in range(1, 4))


def _interleaved_min(fast, slow) -> tuple[float, float]:
    """Best-of-``REPEATS`` wall time for both thunks, interleaved."""
    best_fast = best_slow = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fast()
        best_fast = min(best_fast, time.perf_counter() - start)
        start = time.perf_counter()
        slow()
        best_slow = min(best_slow, time.perf_counter() - start)
    return best_fast, best_slow


def test_bitmask_core_speedup(benchmark):
    protocol = ProtocolOperator(ImmediateSnapshotModel()).of_simplex(
        _triangle(), ROUNDS
    )
    facets = protocol.sorted_facets()
    candidates = sorted(
        {face for facet in facets for face in facet.faces()},
        key=lambda s: s._sort_key(),
    )
    table, _ = protocol._ensure_index()
    masks = [table.encode_mask(simplex) for simplex in candidates]

    # -- facet pruning: mask sweep vs the seed frozenset-bucket pass ----
    prune_mask_s, prune_ref_s = _interleaved_min(
        lambda: _prune_masks(masks),
        lambda: reference.prune_reference(candidates),
    )
    assert set(
        table.decode_mask(m) for m in _prune_masks(masks)
    ) == reference.prune_reference(candidates)

    # -- containment: fresh face index + probe batch per repeat --------
    probes = [
        next(iter(facet.faces(include_self=False)))
        for facet in facets[:PROBES]
    ]

    def contain_masks():
        fresh = SimplicialComplex.from_maximal(facets)
        return sum(probe in fresh for probe in probes)

    def contain_reference():
        faces = reference.faces_reference(facets)
        return sum(probe in faces for probe in probes)

    assert contain_masks() == contain_reference() == len(probes)
    contain_mask_s, contain_ref_s = _interleaved_min(
        contain_masks, contain_reference
    )

    prune_speedup = prune_ref_s / prune_mask_s
    contain_speedup = contain_ref_s / contain_mask_s
    assert prune_speedup >= MIN_SPEEDUP, (
        f"facet pruning only {prune_speedup:.2f}x over the object-set "
        f"reference ({prune_mask_s * 1e3:.2f} ms vs "
        f"{prune_ref_s * 1e3:.2f} ms)"
    )
    assert contain_speedup >= MIN_SPEEDUP, (
        f"containment only {contain_speedup:.2f}x over the object-set "
        f"reference ({contain_mask_s * 1e3:.2f} ms vs "
        f"{contain_ref_s * 1e3:.2f} ms)"
    )

    # One benchmarked pass of the mask-side workload, so pytest-benchmark
    # stats (and conftest's wall_s fallback) describe the shipped path.
    benchmark.pedantic(
        lambda: (_prune_masks(masks), contain_masks()),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(
        rounds=ROUNDS,
        facets=len(facets),
        candidates=len(candidates),
        prune_mask_s=prune_mask_s,
        prune_reference_s=prune_ref_s,
        prune_speedup=round(prune_speedup, 3),
        contain_mask_s=contain_mask_s,
        contain_reference_s=contain_ref_s,
        contain_speedup=round(contain_speedup, 3),
        min_speedup=MIN_SPEEDUP,
    )
