"""E20 (extension) — affine models: concurrency as a resource.

The paper proves its speedup theorem for any iterated model allowing solo
executions, explicitly including affine restrictions of IIS.  This bench
explores the *k-concurrency* family (at most k processes per block) with
the library's engines and records three findings:

* **k = 1, n = 2**: consensus becomes 1-round solvable — removing the
  "both see both" execution breaks the path of Corollary 1's proof;
* **k = 1, n = 3**: consensus is still impossible.  Plain consensus is not
  a fixed point (its 2-process faces are now solvable — the same
  phenomenon as test&set in Corollary 2), but the paper's *relaxed*
  consensus is a fixed point of the sequential model, so Lemma 1 applies.
  A new impossibility proved with the paper's own technique;
* **k = 2, n = 3**: plain consensus is again a fixed point (enough
  concurrency for the original argument).

It also records the empirical model-robustness of the halving map: Eq. (3)
stays correct under snapshot and even collect schedules at n = 3 — lower
bounds proved in IIS apply a fortiori to those weaker models, and the
matching algorithm happens not to need immediacy there.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_affine_concurrency

def test_affine_concurrency(benchmark, record_table):
    data = benchmark.pedantic(
        reproduce_affine_concurrency, rounds=1, iterations=1
    )

    assert data["sequential_2proc"]
    assert not data["sequential_3proc_1round"]
    assert data["relaxed_fixed_point"] and data["relaxed_unsolvable"]
    assert data["two_concurrency_fixed_point"]
    assert all(w <= data["eps"] for w in data["halving_worst"].values())

    rows = [
        ExperimentRow(
            "k=1, n=2: consensus in 1 round",
            "solvable (path argument breaks)",
            "solvable" if data["sequential_2proc"] else "unsolvable",
            data["sequential_2proc"],
        ),
        ExperimentRow(
            "k=1, n=3: consensus in 1 round",
            "unsolvable",
            "unsolvable" if not data["sequential_3proc_1round"] else "?",
            not data["sequential_3proc_1round"],
        ),
        ExperimentRow(
            "k=1, n=3: relaxed consensus fixed point",
            "yes ⟹ unsolvable (new, via Lemma 1)",
            str(data["relaxed_unsolvable"]),
            data["relaxed_unsolvable"],
        ),
        ExperimentRow(
            "k=2, n=3: consensus fixed point",
            "yes (Corollary 1 argument survives)",
            str(data["two_concurrency_fixed_point"]),
            data["two_concurrency_fixed_point"],
        ),
        ExperimentRow(
            f"halving AA worst spread under snapshot (ε={data['eps']})",
            "≤ ε (comparable views suffice)",
            str(data["halving_worst"]["snapshot"]),
            data["halving_worst"]["snapshot"] <= data["eps"],
        ),
        ExperimentRow(
            f"halving AA worst spread under collect (ε={data['eps']})",
            "≤ ε (empirical robustness)",
            str(data["halving_worst"]["collect"]),
            data["halving_worst"]["collect"] <= data["eps"],
        ),
    ]
    record_table(
        "E20_affine_concurrency",
        render_table(
            "E20 (extension) — concurrency-restricted affine models", rows
        ),
    )
