"""E10 — Theorem 3 / Claim 4: test&set does not accelerate ε-AA for n ≥ 3.

Paper shape: the closure of liberal ε-AA w.r.t. IIS+test&set is *still*
liberal (2ε)-AA — the object buys nothing — so the ⌈log₂ 1/ε⌉ bound
stands; for n = 2 the object collapses the complexity to a single round.
"""

from fractions import Fraction

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_theorem3


def F(num, den=1):
    return Fraction(num, den)

def test_theorem3_tas_useless_for_aa(benchmark, record_table):
    data = benchmark.pedantic(reproduce_theorem3, rounds=1, iterations=1)

    assert data["mismatches"] == 0
    rows = [
        ExperimentRow(
            "CL_{IIS+t&s}(liberal ε-AA) = liberal 2ε-AA",
            "yes (Claim 4)",
            f"{data['checked'] - data['mismatches']}/{data['checked']} windows",
            data["mismatches"] == 0,
        )
    ]
    for n, eps, plain, with_tas in data["bounds"]:
        assert plain == with_tas
        rows.append(
            ExperimentRow(
                f"n={n}, ε={eps}: rounds with vs without t&s",
                "equal",
                f"{with_tas} = {plain}",
                plain == with_tas,
            )
        )
    plain2, tas2, solvable2 = data["n2"]
    assert tas2 == 1 and plain2 > 1 and solvable2
    rows.append(
        ExperimentRow(
            "n=2 contrast, ε=1/16",
            "t&s collapses to 1 round",
            f"{tas2} (plain IIS needs {plain2})",
            tas2 == 1 and plain2 > 1,
        )
    )
    record_table(
        "E10_theorem3",
        render_table(
            "E10 / Theorem 3 — test&set does not speed up ε-AA (n ≥ 3)",
            rows,
        ),
    )
