"""BENCH (mask kernels) — connectivity, structure and solvability probes.

The mask-sweep kernel engine claims the graph-flavored complex
algorithms — 1-skeleton connectivity, ridge-incidence structure, and
the solvability engine's partial-image consistency test — are batch
integer sweeps instead of object-set traversals.  This harness times
each against the retained seed implementations
(:mod:`repro.topology.reference` and the frozenset membership test the
solvability engine used before the kernels) on a real ``13^t`` IIS
protocol complex and asserts the acceptance bar of the mask-kernel PR:
**at least 3× on each**.

* *connectivity*: vertex adjacency plus connected components.  Mask
  side is :func:`~repro.topology.kernels.vertex_adjacency` +
  :func:`~repro.topology.kernels.mask_components`; reference side is
  the seed nested-loop adjacency + object BFS.
* *structure*: the pseudomanifold test plus the boundary complex.
  Mask side runs the shipped :func:`is_pseudomanifold` /
  :func:`boundary_complex` (ridge tables via bit-clear iteration);
  reference side materializes faces per the seed algorithms.
* *solvability probe*: the CSP inner loop — every prefix of every
  facet's vertex tuple tested for membership in every constraint's
  allowed family.  Mask side ORs bits and looks up an ``int`` set;
  reference side builds a ``frozenset`` per prefix, exactly as the
  pre-kernel ``consistent()`` did.

Both sides of each pair are timed interleaved and the per-side minimum
over repeats is kept, so clock drift hits them equally.  The round
count is ``REPRO_BENCH_KERNEL_ROUNDS`` (default 2 → 169 facets; CI
smoke uses the same), and the record lands in
``benchmarks/results/BENCH_mask_kernels.json``.  The speedup
assertions are gated on a multi-core host like the parallel scaling
gate: single-core CI containers time sub-millisecond sweeps too
noisily to enforce a ratio.
"""

from __future__ import annotations

import os
import time

from repro.models import ImmediateSnapshotModel
from repro.models.protocol import ProtocolOperator
from repro.topology import Simplex, reference
from repro.topology.connectivity import (
    connected_components,
    one_skeleton_adjacency,
)
from repro.topology.kernels import mask_components, vertex_adjacency
from repro.topology.structure import boundary_complex, is_pseudomanifold
from repro.topology.table import iter_submasks, popcount

ROUNDS = int(os.environ.get("REPRO_BENCH_KERNEL_ROUNDS", "2"))

#: The acceptance bar from the mask-kernel PR.
MIN_SPEEDUP = 3.0

#: Interleaved timing repeats; the minimum per side is kept.
REPEATS = 7

#: Inner sweeps per timed repeat — the connectivity and structure
#: kernels finish a 169-facet complex in well under a millisecond, so
#: each side runs the whole workload this many times per measurement
#: to stay clear of timer resolution.  Identical on both sides, so the
#: multiplier cancels out of the ratio.
SWEEPS = 8


def _triangle() -> Simplex:
    return Simplex((i, f"x{i}") for i in range(1, 4))


def _interleaved_min(fast, slow) -> tuple[float, float]:
    """Best-of-``REPEATS`` wall time for both thunks, interleaved."""
    best_fast = best_slow = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fast()
        best_fast = min(best_fast, time.perf_counter() - start)
        start = time.perf_counter()
        slow()
        best_slow = min(best_slow, time.perf_counter() - start)
    return best_fast, best_slow


def test_mask_kernel_speedup(benchmark):
    protocol = ProtocolOperator(ImmediateSnapshotModel()).of_simplex(
        _triangle(), ROUNDS
    )
    facets = protocol.sorted_facets()
    table, masks = protocol._ensure_index()
    size = len(table)

    # -- parity first: the shipped mask-native paths equal the oracles
    assert one_skeleton_adjacency(
        protocol
    ) == reference.adjacency_reference(facets)
    assert connected_components(
        protocol
    ) == reference.components_reference(facets)
    assert is_pseudomanifold(
        protocol
    ) == reference.is_pseudomanifold_reference(facets)
    assert boundary_complex(
        protocol
    ).facets == reference.boundary_reference(facets)

    # -- connectivity: adjacency + components, masks vs object sets ----
    def connectivity_masks():
        for _ in range(SWEEPS):
            vertex_adjacency(masks, size)
            mask_components(masks, size)

    def connectivity_reference():
        for _ in range(SWEEPS):
            reference.adjacency_reference(facets)
            reference.components_reference(facets)

    conn_mask_s, conn_ref_s = _interleaved_min(
        connectivity_masks, connectivity_reference
    )

    # -- structure: pseudomanifold + boundary, shipped vs seed ---------
    def structure_masks():
        for _ in range(SWEEPS):
            is_pseudomanifold(protocol)
            boundary_complex(protocol)

    def structure_reference():
        for _ in range(SWEEPS):
            reference.is_pseudomanifold_reference(facets)
            reference.boundary_reference(facets)

    struct_mask_s, struct_ref_s = _interleaved_min(
        structure_masks, structure_reference
    )

    # -- solvability probe: the CSP consistency inner loop -------------
    # Every ≥2-vertex prefix of every facet, tested against every
    # constraint's allowed family (that facet's ≥2-vertex faces).
    probe_vertices = [facet.vertices for facet in facets]
    probe_bits = [
        tuple(1 << table.index_of(v) for v in vertices)
        for vertices in probe_vertices
    ]
    allowed_masks = [
        {sub for sub in iter_submasks(mask) if popcount(sub) >= 2}
        for mask in masks
    ]
    allowed_faces = [
        {
            frozenset(face.vertices)
            for face in facet.faces()
            if face.dim >= 1
        }
        for facet in facets
    ]

    def solvability_masks() -> int:
        hits = 0
        for allowed in allowed_masks:
            for bits in probe_bits:
                acc = bits[0]
                for bit in bits[1:]:
                    acc |= bit
                    if acc in allowed:
                        hits += 1
        return hits

    def solvability_reference() -> int:
        hits = 0
        for allowed in allowed_faces:
            for vertices in probe_vertices:
                for count in range(2, len(vertices) + 1):
                    if frozenset(vertices[:count]) in allowed:
                        hits += 1
        return hits

    assert solvability_masks() == solvability_reference()
    solv_mask_s, solv_ref_s = _interleaved_min(
        solvability_masks, solvability_reference
    )

    conn_speedup = conn_ref_s / conn_mask_s
    struct_speedup = struct_ref_s / struct_mask_s
    solv_speedup = solv_ref_s / solv_mask_s
    cores = os.cpu_count() or 1
    if cores >= 2:
        assert conn_speedup >= MIN_SPEEDUP, (
            f"connectivity only {conn_speedup:.2f}x over the object-set "
            f"reference ({conn_mask_s * 1e3:.2f} ms vs "
            f"{conn_ref_s * 1e3:.2f} ms)"
        )
        assert struct_speedup >= MIN_SPEEDUP, (
            f"structure only {struct_speedup:.2f}x over the object-set "
            f"reference ({struct_mask_s * 1e3:.2f} ms vs "
            f"{struct_ref_s * 1e3:.2f} ms)"
        )
        assert solv_speedup >= MIN_SPEEDUP, (
            f"solvability probe only {solv_speedup:.2f}x over the "
            f"frozenset reference ({solv_mask_s * 1e3:.2f} ms vs "
            f"{solv_ref_s * 1e3:.2f} ms)"
        )

    # One benchmarked pass of the mask-side workload, so pytest-benchmark
    # stats (and conftest's wall_s fallback) describe the shipped path.
    benchmark.pedantic(
        lambda: (
            connectivity_masks(),
            structure_masks(),
            solvability_masks(),
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(
        rounds=ROUNDS,
        facets=len(facets),
        vertices=size,
        sweeps=SWEEPS,
        connectivity_mask_s=conn_mask_s,
        connectivity_reference_s=conn_ref_s,
        connectivity_speedup=round(conn_speedup, 3),
        structure_mask_s=struct_mask_s,
        structure_reference_s=struct_ref_s,
        structure_speedup=round(struct_speedup, 3),
        solvability_mask_s=solv_mask_s,
        solvability_reference_s=solv_ref_s,
        solvability_speedup=round(solv_speedup, 3),
        min_speedup=MIN_SPEEDUP,
        cores=cores,
    )
