"""E17 — extension (Conclusion): the closure engine on k-set agreement.

The paper closes by asking whether the speedup technique applies to other
tasks; this bench runs the machinery on 2-set agreement among three
processes: the closure strictly extends Δ (so k-set agreement is *not* a
fixed point — the technique alone does not reprove its impossibility,
matching the paper's observation that connectivity-style arguments are
needed there), while 1-round unsolvability is still certified by search.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_kset

def test_kset_extension(benchmark, record_table):
    data = benchmark.pedantic(reproduce_kset, rounds=1, iterations=1)

    assert not data["zero_round"]
    assert not data["one_round"]
    assert data["closure_grows"]

    rows = [
        ExperimentRow(
            "2-set agreement, n=3, 0 rounds",
            "unsolvable",
            "unsolvable" if not data["zero_round"] else "solvable",
            not data["zero_round"],
        ),
        ExperimentRow(
            "2-set agreement, n=3, 1 round",
            "unsolvable (BG/SZ/HS)",
            "unsolvable" if not data["one_round"] else "solvable",
            not data["one_round"],
        ),
        ExperimentRow(
            "closure strictly extends Δ (not a fixed point)",
            "expected: technique alone insufficient",
            f"{data['delta_facets']} → {data['closure_facets']} facets",
            data["closure_grows"],
        ),
    ]
    record_table(
        "E17_kset",
        render_table(
            "E17 / Conclusion — closure engine on 2-set agreement", rows
        ),
    )
