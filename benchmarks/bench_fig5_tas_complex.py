"""E5 — Fig. 5: the 1-round IIS+test&set complex for three processes.

Paper shape: each of the 12 chromatic-subdivision vertices is duplicated by
the test&set outcome — except the three solo vertices, which always carry
outcome 1 — giving 7 vertices per color (21 in total); each execution has
exactly one winner, drawn from its first block.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_fig5


def test_fig5_tas_complex(benchmark, record_table):
    data = benchmark(reproduce_fig5)

    assert data["per_color"] == {1: 7, 2: 7, 3: 7}
    assert set(data["solo_outcomes"].values()) == {1}
    assert all(data["non_solo_views_duplicated"].values())
    assert data["full_participation_facets"] == 18

    rows = [
        ExperimentRow(
            "vertices per color",
            "7 (4 views, solo not duplicated)",
            str(sorted(set(data["per_color"].values()))),
            data["per_color"] == {1: 7, 2: 7, 3: 7},
        ),
        ExperimentRow(
            "total vertices",
            "21",
            str(len(data["complex"].vertices)),
            len(data["complex"].vertices) == 21,
        ),
        ExperimentRow(
            "solo views win test&set",
            "always",
            str(set(data["solo_outcomes"].values())),
            set(data["solo_outcomes"].values()) == {1},
        ),
        ExperimentRow(
            "non-solo views duplicated 0/1",
            "yes",
            str(all(data["non_solo_views_duplicated"].values())),
            all(data["non_solo_views_duplicated"].values()),
        ),
        ExperimentRow(
            "full-participation facets",
            "Σ |first block| over 13 schedules = 18",
            str(data["full_participation_facets"]),
            data["full_participation_facets"] == 18,
        ),
    ]
    record_table(
        "E5_fig5",
        render_table("E5 / Fig. 5 — IIS+test&set one-round complex, n = 3", rows),
    )
