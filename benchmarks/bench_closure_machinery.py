"""E2 — the closure machinery on the worked instance of Figs. 1–3.

Builds a local task Π_{τ,σ}, decides its 1-round solvability, and computes
a full Δ'(σ) — the three operations every later experiment composes.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_closure_machinery

def test_closure_machinery(benchmark, record_table):
    data = benchmark(reproduce_closure_machinery)

    assert not data["tau_in_delta"]
    assert data["witness_found"]
    assert data["tau_in_closure"]
    assert not data["tau_out_closure"]
    assert data["closure_size"] > data["delta_size"]

    rows = [
        ExperimentRow(
            "τ spread 2ε: legal per Δ?", "no", str(data["tau_in_delta"]), True
        ),
        ExperimentRow(
            "local task Π_{τ,σ} 1-round solvable",
            "yes (Fig. 2)",
            str(data["witness_found"]),
            data["witness_found"],
        ),
        ExperimentRow(
            "τ ∈ Δ'(σ)", "yes", str(data["tau_in_closure"]), data["tau_in_closure"]
        ),
        ExperimentRow(
            "τ spread 4ε ∈ Δ'(σ)",
            "no",
            str(data["tau_out_closure"]),
            not data["tau_out_closure"],
        ),
        ExperimentRow(
            "|Δ'(σ)| > |Δ(σ)| (closure is easier)",
            "yes",
            f"{data['closure_size']} > {data['delta_size']}",
            data["closure_size"] > data["delta_size"],
        ),
    ]
    record_table(
        "E2_closure_machinery",
        render_table("E2 / Figs. 1–3 — local tasks and closure membership", rows),
    )
