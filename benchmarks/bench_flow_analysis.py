"""BENCH (flow analysis) — full-tree analysis under a wall-clock gate.

The flow engine (:mod:`repro.checks.flow`) is a CI gate: every push
re-analyzes all of ``src/repro`` (CFG construction, worklist fixpoint,
and all four rule packs per function), so its cost is paid on every
commit and must stay budgeted.  This harness runs the complete
self-analysis — the exact workload of ``repro check --flow`` — and
asserts:

* the whole tree analyzes inside ``MAX_WALL_S`` seconds (a generous
  multiple of the ~1 s observed at introduction, so the gate catches
  order-of-magnitude regressions — an accidentally quadratic fixpoint,
  an env-copy explosion — not machine noise);
* the analysis visits the full tree (file count sanity floor) and
  reports zero non-baselined findings, i.e. the gate the CI step
  enforces is actually green.

The record lands in ``benchmarks/results/BENCH_flow_analysis.json``
with per-file throughput so the perf trajectory is diffable.
"""

from __future__ import annotations

import os
import pathlib
import time

from repro.checks.astlint import iter_python_files
from repro.checks.flow import analyze_paths

#: Wall-clock gate for one full-tree analysis (seconds).
MAX_WALL_S = float(os.environ.get("REPRO_BENCH_FLOW_BUDGET_S", "10.0"))

#: The tree must not silently shrink out from under the benchmark.
MIN_FILES = 50

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def test_flow_analysis_budget(benchmark):
    files = sum(1 for _ in iter_python_files([str(_SRC)]))
    assert files >= MIN_FILES, (
        f"only {files} files under {_SRC}; the full-tree benchmark "
        "no longer measures a full tree"
    )

    start = time.perf_counter()
    findings = analyze_paths([str(_SRC)])
    wall_s = time.perf_counter() - start

    errors = [f for f in findings if str(f.severity) == "error"]
    assert not errors, (
        "self-analysis of src/repro must be clean of errors, got: "
        + "; ".join(f"{f.rule_id} {f.path}" for f in errors[:5])
    )
    assert wall_s <= MAX_WALL_S, (
        f"full-tree flow analysis took {wall_s:.2f}s, over the "
        f"{MAX_WALL_S:.1f}s budget — the fixpoint or a rule pack "
        "regressed"
    )

    # The benchmarked pass is the same workload, so pytest-benchmark
    # stats (and conftest's wall_s fallback) describe the gated path.
    benchmark.pedantic(
        lambda: analyze_paths([str(_SRC)]), rounds=3, iterations=1
    )
    benchmark.extra_info.update(
        bench_name="flow_analysis",
        files=files,
        findings=len(findings),
        wall_s=round(wall_s, 4),
        per_file_ms=round(wall_s * 1000.0 / files, 3),
        budget_s=MAX_WALL_S,
    )
