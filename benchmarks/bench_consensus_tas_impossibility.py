"""E6 — Corollary 2 + Fig. 6: consensus with test&set impossible for n > 2.

Paper shape: the relaxed consensus task (agreement only when ≥ 3
participate) is a fixed point of IIS+test&set; it is not 0-round solvable;
hence consensus among n ≥ 3 processes is unsolvable with test&set, even
though it is 1-round solvable for n = 2.  The ρ-simplices of Fig. 6 are the
execution pair that forces agreement inside the closure argument.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_corollary2

def test_corollary2_consensus_with_tas(benchmark, record_table):
    data = benchmark.pedantic(reproduce_corollary2, rounds=1, iterations=1)

    assert data["fixed_point"]
    assert data["unsolvable"]
    assert data["rho_ijk_exists"] and data["rho_jik_exists"]
    assert data["two_proc_solvable"]
    assert not data["three_proc_one_round"]

    rows = [
        ExperimentRow(
            "relaxed consensus fixed point of IIS+t&s",
            "yes",
            str(data["fixed_point"]),
            data["fixed_point"],
        ),
        ExperimentRow(
            "verdict for n = 3 (Lemma 1)",
            "unsolvable",
            "unsolvable" if data["unsolvable"] else "?",
            data["unsolvable"],
        ),
        ExperimentRow(
            "Fig. 6 simplices ρ_{i,j,k}, ρ_{j,i,k} exist",
            "yes",
            str(data["rho_ijk_exists"] and data["rho_jik_exists"]),
            data["rho_ijk_exists"] and data["rho_jik_exists"],
        ),
        ExperimentRow(
            "n = 2 contrast: 1-round solvable",
            "yes (Fig. 4)",
            str(data["two_proc_solvable"]),
            data["two_proc_solvable"],
        ),
        ExperimentRow(
            "n = 3 at t = 1 (brute force)",
            "unsolvable",
            "unsolvable" if not data["three_proc_one_round"] else "?",
            not data["three_proc_one_round"],
        ),
    ]
    record_table(
        "E6_corollary2",
        render_table(
            "E6 / Corollary 2 — consensus with test&set, n > 2", rows
        ),
    )
