"""Benchmark-harness plumbing.

Every benchmark regenerates one of the paper's evaluation artifacts
(figure, claim, corollary, or theorem — see the per-experiment index in
DESIGN.md), asserts the reproduced *shape*, and records a paper-vs-measured
table under ``benchmarks/results/`` so EXPERIMENTS.md can cite it.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write a rendered experiment table to results/<experiment>.txt."""

    def write(experiment_id: str, text: str) -> None:
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return write
