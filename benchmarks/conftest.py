"""Benchmark-harness plumbing.

Every benchmark regenerates one of the paper's evaluation artifacts
(figure, claim, corollary, or theorem — see the per-experiment index in
DESIGN.md), asserts the reproduced *shape*, and records a paper-vs-measured
table under ``benchmarks/results/`` so EXPERIMENTS.md can cite it.

Since the parallel-engine PR every benchmark test additionally emits a
machine-readable ``benchmarks/results/BENCH_<name>.json`` record with the
standard schema ``{name, workers, wall_s, facets, timestamp}`` (plus any
extra keys the test stashes in ``benchmark.extra_info``), so the perf
trajectory can be diffed across PRs without parsing rendered tables.
"""

from __future__ import annotations

import json
import pathlib
from datetime import datetime, timezone

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """Write a rendered experiment table to results/<experiment>.txt."""

    def write(experiment_id: str, text: str) -> None:
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return write


def _bench_wall_s(bench) -> float:
    """Total measured wall time of a finished ``benchmark`` fixture."""
    stats = getattr(bench, "stats", None)
    inner = getattr(stats, "stats", None)
    total = getattr(inner, "total", None)
    return float(total) if total is not None else 0.0


@pytest.fixture(autouse=True)
def emit_bench_json(request):
    """Standardized BENCH_<name>.json emission for every benchmark test.

    Runs after the test body (and after pytest-benchmark collected its
    stats).  The record name defaults to the module stem without its
    ``bench_`` prefix; tests override it — or add ``workers``, ``facets``
    and arbitrary extra keys — through ``benchmark.extra_info``.
    """
    bench = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    if bench is None or getattr(bench, "stats", None) is None:
        return  # no benchmark fixture, or requested but never run
    extra = dict(getattr(bench, "extra_info", None) or {})
    stem = pathlib.Path(str(request.node.fspath)).stem
    default_name = stem[6:] if stem.startswith("bench_") else stem
    name = str(extra.pop("bench_name", default_name))
    record = {
        "name": name,
        "workers": extra.pop("workers", 1),
        "wall_s": extra.pop("wall_s", _bench_wall_s(bench)),
        "facets": extra.pop("facets", None),
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    record.update(extra)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
