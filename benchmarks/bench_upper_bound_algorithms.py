"""E15 — the four upper-bound algorithm families of the paper.

Paper shape:

    thirds AA        n = 2        ⌈log₃ 1/ε⌉ rounds        IIS
    halving AA       n ≥ 3        ⌈log₂ 1/ε⌉ rounds        IIS
    t&s consensus    n = 2        1 round                  IIS + test&set
    bitwise AA       any n        ⌈log₂ 1/ε⌉ rounds        IIS + consensus
    ID consensus     any n        ⌈log₂ n⌉ rounds          IIS + consensus

Measured operationally: run each under adversarial schedules (exhaustive
where feasible, randomized with crashes otherwise), confirm correctness and
the exact round count.
"""

from repro.analysis import ExperimentRow, render_table
from repro.experiments import reproduce_upper_bounds

def test_upper_bound_algorithms(benchmark, record_table):
    cases = benchmark.pedantic(reproduce_upper_bounds, rounds=1, iterations=1)

    rows = []
    for label, expected_rounds, rounds, ok in cases:
        assert rounds == expected_rounds, label
        assert ok, label
        rows.append(
            ExperimentRow(
                label,
                f"{expected_rounds} rounds, always correct",
                f"{rounds} rounds, correct={ok}",
                rounds == expected_rounds and ok,
            )
        )
    record_table(
        "E15_upper_bounds",
        render_table(
            "E15 — upper-bound algorithms under adversarial schedules", rows
        ),
    )
