"""Unit tests for the canonical isomorphism χ and generic isomorphism search."""

import pytest

from repro.errors import ChromaticityError
from repro.topology import Simplex, SimplicialComplex, Vertex, View
from repro.topology.isomorphism import (
    canonical_isomorphism,
    find_color_preserving_isomorphism,
    relabel_complex,
    relabel_value,
)


class TestRelabeling:
    def test_relabel_simple_view(self):
        view = View({1: "a", 2: "b"})
        relabeled = relabel_value(view, {1: "x", 2: "y"})
        assert relabeled == View({1: "x", 2: "y"})

    def test_relabel_nested_view(self):
        inner = View({1: "a"})
        outer = View({1: inner, 2: "b"})
        relabeled = relabel_value(outer, {1: "x", 2: "y"})
        assert relabeled == View({1: View({1: "x"}), 2: "y"})

    def test_relabel_box_decorated_value(self):
        value = (1, View({1: "a"}))
        assert relabel_value(value, {1: "x"}) == (1, View({1: "x"}))

    def test_missing_replacement_rejected(self):
        with pytest.raises(ChromaticityError):
            relabel_value(View({1: "a"}), {2: "x"})


class TestCanonicalIsomorphism:
    def test_chi_on_one_round_iis(self, iis):
        sigma = Simplex([(1, "a"), (2, "b")])
        sigma_prime = Simplex([(1, "x"), (2, "y")])
        protocol = iis.one_round_complex(sigma)
        chi = canonical_isomorphism(protocol, sigma, sigma_prime)
        relabeled = iis.one_round_complex(sigma_prime)
        assert chi.image() == relabeled
        # Vertex-level: (1, {(1,a)}) ↦ (1, {(1,x)}).
        assert chi(Vertex(1, View({1: "a"}))) == Vertex(1, View({1: "x"}))

    def test_chi_preserves_structure_on_triangle(self, iis, triangle):
        sigma_prime = Simplex([(1, 0), (2, 0), (3, 1)])
        protocol = iis.one_round_complex(triangle)
        chi = canonical_isomorphism(protocol, triangle, sigma_prime)
        image = chi.image()
        assert image.f_vector() == protocol.f_vector()

    def test_chi_on_augmented_model(self, iis_tas, triangle):
        sigma_prime = Simplex([(1, "p"), (2, "q"), (3, "r")])
        protocol = iis_tas.one_round_complex(triangle)
        chi = canonical_isomorphism(protocol, triangle, sigma_prime)
        assert chi.image() == iis_tas.one_round_complex(sigma_prime)

    def test_chi_requires_same_colors(self, iis, triangle):
        protocol = iis.one_round_complex(triangle)
        with pytest.raises(ChromaticityError):
            canonical_isomorphism(protocol, triangle, Simplex([(1, "x")]))

    def test_two_round_relabel(self, iis, edge):
        sigma_prime = Simplex([(1, 0), (2, 1)])
        base = SimplicialComplex.from_simplex(edge)
        two_rounds = iis.protocol_complex(base, 2)
        relabeled = relabel_complex(two_rounds, sigma_prime.as_mapping())
        expected = iis.protocol_complex(
            SimplicialComplex.from_simplex(sigma_prime), 2
        )
        assert relabeled == expected


class TestGenericIsomorphism:
    def test_isomorphic_relabelings(self, iis, triangle):
        protocol = iis.one_round_complex(triangle)
        other = iis.one_round_complex(Simplex([(1, "x"), (2, "y"), (3, "z")]))
        bijection = find_color_preserving_isomorphism(protocol, other)
        assert bijection is not None
        assert len(bijection) == len(protocol.vertices)

    def test_non_isomorphic_detected(self, iis, triangle, snapshot_model):
        left = iis.one_round_complex(triangle)
        right = snapshot_model.one_round_complex(triangle)
        assert find_color_preserving_isomorphism(left, right) is None

    def test_color_mismatch_detected(self):
        left = SimplicialComplex.from_simplex(Simplex([(1, "a")]))
        right = SimplicialComplex.from_simplex(Simplex([(2, "a")]))
        assert find_color_preserving_isomorphism(left, right) is None
