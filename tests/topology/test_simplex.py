"""Unit tests for chromatic simplices."""

import pytest

from repro.errors import ChromaticityError
from repro.topology import Simplex, Vertex


class TestSimplexConstruction:
    def test_from_vertices(self):
        simplex = Simplex([Vertex(1, "a"), Vertex(2, "b")])
        assert simplex.dim == 1

    def test_from_pairs(self):
        simplex = Simplex([(2, "b"), (1, "a")])
        assert [v.color for v in simplex.vertices] == [1, 2]

    def test_from_mapping(self):
        simplex = Simplex.from_mapping({1: "a", 3: "c"})
        assert simplex.ids == frozenset({1, 3})

    def test_single(self):
        simplex = Simplex.single(4, "x")
        assert simplex.dim == 0
        assert simplex.value_of(4) == "x"

    def test_empty_rejected(self):
        with pytest.raises(ChromaticityError):
            Simplex([])

    def test_conflicting_colors_rejected(self):
        with pytest.raises(ChromaticityError):
            Simplex([(1, "a"), (1, "b")])

    def test_duplicate_identical_vertex_collapses(self):
        simplex = Simplex([(1, "a"), (1, "a"), (2, "b")])
        assert simplex.dim == 1


class TestSimplexStructure:
    def test_ids_and_dim(self, triangle):
        assert triangle.ids == frozenset({1, 2, 3})
        assert triangle.dim == 2
        assert len(triangle) == 3

    def test_value_and_vertex_lookup(self, triangle):
        assert triangle.value_of(2) == "b"
        assert triangle.vertex_of(2) == Vertex(2, "b")

    def test_as_mapping(self, triangle):
        assert triangle.as_mapping() == {1: "a", 2: "b", 3: "c"}

    def test_contains_vertex(self, triangle):
        assert Vertex(1, "a") in triangle
        assert Vertex(1, "z") not in triangle
        assert "not-a-vertex" not in triangle

    def test_iteration_sorted_by_color(self, triangle):
        assert [v.color for v in triangle] == [1, 2, 3]


class TestFacesAndProjections:
    def test_face_count(self, triangle):
        faces = list(triangle.faces())
        assert len(faces) == 7  # 1 + 3 + 3 non-empty subsets

    def test_proper_faces_exclude_self(self, triangle):
        proper = list(triangle.proper_faces())
        assert triangle not in proper
        assert len(proper) == 6

    def test_faces_of_vertex(self):
        vertex_simplex = Simplex.single(1, "a")
        assert list(vertex_simplex.faces()) == [vertex_simplex]

    def test_proj(self, triangle):
        projected = triangle.proj([1, 3])
        assert projected.ids == frozenset({1, 3})
        assert projected.value_of(3) == "c"

    def test_proj_missing_color_rejected(self, triangle):
        with pytest.raises(ChromaticityError):
            triangle.proj([1, 9])

    def test_proj_empty_rejected(self, triangle):
        with pytest.raises(ChromaticityError):
            triangle.proj([])

    def test_is_face_of(self, triangle):
        assert triangle.proj([1]).is_face_of(triangle)
        assert not triangle.is_face_of(triangle.proj([1, 2]))

    def test_union_compatible(self):
        left = Simplex([(1, "a")])
        right = Simplex([(2, "b")])
        assert left.union(right).ids == frozenset({1, 2})

    def test_union_conflict_rejected(self):
        with pytest.raises(ChromaticityError):
            Simplex([(1, "a")]).union(Simplex([(1, "b")]))

    def test_with_vertex(self):
        extended = Simplex([(1, "a")]).with_vertex(Vertex(2, "b"))
        assert extended.dim == 1


class TestSimplexEquality:
    def test_order_insensitive(self):
        assert Simplex([(1, "a"), (2, "b")]) == Simplex([(2, "b"), (1, "a")])

    def test_hashable(self):
        assert len({Simplex([(1, "a")]), Simplex([(1, "a")])}) == 1

    def test_value_sensitive(self):
        assert Simplex([(1, "a")]) != Simplex([(1, "b")])
