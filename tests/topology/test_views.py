"""Unit tests for full-information views."""

import pytest

from repro.errors import ChromaticityError
from repro.topology import Vertex, View


class TestViewConstruction:
    def test_from_mapping(self):
        view = View({1: "a", 2: "b"})
        assert view[1] == "a"
        assert view[2] == "b"

    def test_from_pairs(self):
        view = View([(2, "b"), (1, "a")])
        assert view.items == ((1, "a"), (2, "b"))  # sorted by color

    def test_from_vertices(self):
        view = View([Vertex(1, "a"), Vertex(2, "b")])
        assert view[1] == "a"

    def test_duplicate_color_rejected(self):
        with pytest.raises(ChromaticityError):
            View([(1, "a"), (1, "b")])

    def test_non_int_color_rejected(self):
        with pytest.raises(ChromaticityError):
            View([("1", "a")])

    def test_empty_view_allowed(self):
        assert len(View([])) == 0


class TestViewAccessors:
    def test_mapping_protocol(self):
        view = View({1: "a", 2: "b"})
        assert 1 in view
        assert 3 not in view
        assert view.get(3) is None
        assert view.get(3, "dflt") == "dflt"
        assert len(view) == 2
        assert list(view) == [(1, "a"), (2, "b")]

    def test_ids(self):
        assert View({5: "x", 2: "y"}).ids == frozenset({2, 5})

    def test_values_in_color_order(self):
        assert View({2: "b", 1: "a"}).values() == ("a", "b")

    def test_restrict(self):
        view = View({1: "a", 2: "b", 3: "c"})
        assert view.restrict([1, 3]).ids == frozenset({1, 3})
        assert view.restrict([]).ids == frozenset()

    def test_with_pair_adds_and_overwrites(self):
        view = View({1: "a"})
        assert view.with_pair(2, "b").ids == frozenset({1, 2})
        assert view.with_pair(1, "z")[1] == "z"
        assert view[1] == "a"  # original untouched

    def test_vertices(self):
        vertices = View({1: "a", 2: "b"}).vertices()
        assert vertices == (Vertex(1, "a"), Vertex(2, "b"))


class TestViewSemantics:
    def test_subview(self):
        small = View({1: "a"})
        big = View({1: "a", 2: "b"})
        assert small.is_subview_of(big)
        assert not big.is_subview_of(small)

    def test_subview_requires_equal_values(self):
        assert not View({1: "a"}).is_subview_of(View({1: "z", 2: "b"}))

    def test_equality_and_hash(self):
        assert View({1: "a", 2: "b"}) == View([(2, "b"), (1, "a")])
        assert hash(View({1: "a"})) == hash(View({1: "a"}))
        assert View({1: "a"}) != View({1: "b"})

    def test_view_nestable_as_vertex_value(self):
        inner = View({1: "x"})
        outer = View({1: inner, 2: inner})
        assert outer[1] == inner
        assert hash(outer)  # nested views must stay hashable

    def test_repr_is_stable(self):
        assert repr(View({2: "b", 1: "a"})) == repr(View({1: "a", 2: "b"}))
