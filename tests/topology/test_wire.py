"""Property tests for the wire codec (hypothesis round trips)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ChromaticityError
from repro.topology import (
    Simplex,
    SimplicialComplex,
    Vertex,
    VertexTable,
    decode_complex,
    decode_simplex,
    digest_complex,
    digest_payload,
    encode_complex,
    encode_simplex,
)

colors = st.integers(min_value=1, max_value=5)
values = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.fractions(
        min_value=Fraction(0), max_value=Fraction(1), max_denominator=8
    ),
    st.text(alphabet="abc", min_size=0, max_size=2),
)


@st.composite
def simplices(draw, max_colors=4):
    pool = draw(
        st.lists(colors, min_size=1, max_size=max_colors, unique=True)
    )
    return Simplex((c, draw(values)) for c in pool)


@st.composite
def complexes(draw, max_facets=4):
    facets = draw(st.lists(simplices(), min_size=1, max_size=max_facets))
    return SimplicialComplex(facets)


class TestSimplexRoundTrip:
    @given(simplices())
    def test_round_trip_identity(self, sigma):
        assert decode_simplex(encode_simplex(sigma)) == sigma

    @given(simplices())
    def test_encoding_is_canonical(self, sigma):
        # Same simplex → same wire record → usable as a dedup/memo key.
        again = Simplex(reversed(sigma.vertices))
        assert encode_simplex(again) == encode_simplex(sigma)
        assert hash(encode_simplex(again)) == hash(encode_simplex(sigma))

    @given(simplices(), simplices())
    def test_distinct_simplices_encode_distinctly(self, a, b):
        assert (encode_simplex(a) == encode_simplex(b)) == (a == b)


class TestComplexRoundTrip:
    @given(complexes())
    def test_round_trip_identity(self, complex_):
        assert decode_complex(encode_complex(complex_)) == complex_

    @given(complexes())
    def test_encoding_is_canonical(self, complex_):
        rebuilt = SimplicialComplex(list(complex_.facets))
        assert encode_complex(rebuilt) == encode_complex(complex_)

    @given(complexes())
    def test_facet_count(self, complex_):
        wire = encode_complex(complex_)
        assert wire.facet_count == len(complex_.facets)

    @given(complexes())
    def test_checked_decode_matches_trusted_decode(self, complex_):
        wire = encode_complex(complex_)
        assert decode_complex(wire, check=True) == decode_complex(wire)

    def test_empty_complex_round_trips(self):
        empty = SimplicialComplex.empty()
        wire = encode_complex(empty)
        assert wire.pairs == () and wire.masks == ()
        assert decode_complex(wire) == empty


class TestVertexTable:
    @given(st.lists(st.tuples(colors, values), min_size=1, max_size=6))
    def test_interning_is_idempotent(self, pairs):
        table = VertexTable()
        first = [table.add(Vertex(c, v)) for c, v in pairs]
        second = [table.add(Vertex(c, v)) for c, v in pairs]
        assert first == second
        assert len(table) == len({Vertex(c, v) for c, v in pairs})

    @given(simplices())
    def test_mask_round_trip(self, sigma):
        table = VertexTable()
        assert (
            table.decode_mask(table.encode_mask_interning(sigma)) == sigma
        )

    @given(simplices())
    def test_encode_mask_is_strict(self, sigma):
        # Regression: encode_mask used to silently intern unknown
        # vertices, so masks depended on encounter order.  It must now
        # reject vertices the table does not hold.
        table = VertexTable()
        with pytest.raises(ChromaticityError):
            table.encode_mask(sigma)
        # Once the table holds the vertices, strict encoding agrees
        # with the interning builder.
        mask = table.encode_mask_interning(sigma)
        assert table.encode_mask(sigma) == mask

    def test_encode_mask_rejects_stale_table(self):
        table = VertexTable()
        known = Simplex([(1, "a")])
        table.encode_mask_interning(known)
        stale = Simplex([(1, "a"), (2, "b")])
        with pytest.raises(ChromaticityError):
            table.encode_mask(stale)
        # The strict probe must not have grown the table.
        assert len(table) == 1

    def test_decode_mask_rejects_empty_and_foreign_bits(self):
        table = VertexTable()
        table.add(Vertex(1, 0))
        with pytest.raises(ChromaticityError):
            table.decode_mask(0)
        with pytest.raises(ChromaticityError):
            table.decode_mask(0b10)


# Golden digests: these constants pin the canonical encoding across
# releases.  A change here breaks every persisted content-addressed
# store, so it must be deliberate (bump ``STORE_SCHEMA`` in
# ``repro.serve.store`` alongside it).
GOLDEN_PAYLOAD = (
    "repro-golden",
    1,
    Fraction(1, 3),
    ["a", None, True],
    {"k": (2, 4)},
)
GOLDEN_PAYLOAD_DIGEST = (
    "51d27ca7f3ac3c2cbed17eaf677f706f35e46ca2e6a515e7fba444b4b888be7e"
)
GOLDEN_COMPLEX_DIGEST = (
    "d9907d022e8893184330965bfe0636b501b6edf526e4c54ed342087a188f3c49"
)

payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.fractions(max_denominator=64),
        st.text(max_size=6),
        st.binary(max_size=6),
    ),
    lambda inner: st.one_of(
        st.lists(inner, max_size=3),
        st.dictionaries(st.text(max_size=3), inner, max_size=3),
    ),
    max_leaves=8,
)


class TestDigestPayload:
    def test_golden_digest_is_stable(self):
        assert (
            digest_payload(GOLDEN_PAYLOAD) == GOLDEN_PAYLOAD_DIGEST
        )

    @given(payloads)
    def test_digest_is_deterministic(self, payload):
        assert digest_payload(payload) == digest_payload(payload)

    @given(payloads)
    def test_canonical_bytes_round_trip_equal_values(self, payload):
        # Structural copies digest identically (lists/dicts rebuilt).
        import copy

        assert digest_payload(copy.deepcopy(payload)) == digest_payload(
            payload
        )

    @given(payloads, payloads)
    def test_distinct_values_digest_distinctly(self, a, b):
        if _normalize(a) == _normalize(b):
            assert digest_payload(a) == digest_payload(b)
        else:
            assert digest_payload(a) != digest_payload(b)

    def test_tuple_list_agreement(self):
        # Tuples and lists are interchangeable containers on the wire.
        assert digest_payload((1, 2, "x")) == digest_payload([1, 2, "x"])

    def test_concatenation_ambiguity_excluded(self):
        assert digest_payload(("ab", "c")) != digest_payload(("a", "bc"))

    def test_bool_int_disambiguation(self):
        assert digest_payload(True) != digest_payload(1)
        assert digest_payload(False) != digest_payload(0)

    def test_dict_order_is_immaterial(self):
        assert digest_payload({"a": 1, "b": 2}) == digest_payload(
            {"b": 2, "a": 1}
        )


def _normalize(value):
    """Collapse wire-equivalent values (tuple==list, int-valued Fraction
    == int, bytearray==bytes) so inequality implies digest inequality."""
    from fractions import Fraction as F

    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, F):
        if value.denominator == 1:
            return ("i", int(value))
        return ("q", value.numerator, value.denominator)
    if isinstance(value, int):
        return ("i", value)
    if isinstance(value, (bytes, bytearray)):
        return ("y", bytes(value))
    if isinstance(value, (tuple, list)):
        return ("t", tuple(_normalize(v) for v in value))
    if isinstance(value, dict):
        return (
            "d",
            frozenset(
                (_normalize(k), _normalize(v)) for k, v in value.items()
            ),
        )
    return value


class TestDigestComplex:
    def test_golden_digest_is_stable(self):
        complex_ = SimplicialComplex(
            [
                Simplex([(1, 0), (2, 1)]),
                Simplex([(2, 1), (3, Fraction(1, 2))]),
            ]
        )
        assert digest_complex(complex_) == GOLDEN_COMPLEX_DIGEST

    @given(complexes())
    def test_digest_agrees_for_rebuilt_complexes(self, complex_):
        rebuilt = SimplicialComplex(
            [Simplex(reversed(f.vertices)) for f in complex_.facets]
        )
        assert digest_complex(rebuilt) == digest_complex(complex_)

    @given(complexes(), complexes())
    def test_distinct_complexes_digest_distinctly(self, a, b):
        assert (digest_complex(a) == digest_complex(b)) == (a == b)

    @given(complexes())
    def test_digest_matches_wire_payload_digest(self, complex_):
        wire = encode_complex(complex_)
        assert digest_complex(complex_) == digest_payload(
            ("wire-complex", wire.pairs, wire.masks)
        )
