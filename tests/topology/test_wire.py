"""Property tests for the wire codec (hypothesis round trips)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ChromaticityError
from repro.topology import (
    Simplex,
    SimplicialComplex,
    Vertex,
    VertexTable,
    decode_complex,
    decode_simplex,
    encode_complex,
    encode_simplex,
)

colors = st.integers(min_value=1, max_value=5)
values = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.fractions(
        min_value=Fraction(0), max_value=Fraction(1), max_denominator=8
    ),
    st.text(alphabet="abc", min_size=0, max_size=2),
)


@st.composite
def simplices(draw, max_colors=4):
    pool = draw(
        st.lists(colors, min_size=1, max_size=max_colors, unique=True)
    )
    return Simplex((c, draw(values)) for c in pool)


@st.composite
def complexes(draw, max_facets=4):
    facets = draw(st.lists(simplices(), min_size=1, max_size=max_facets))
    return SimplicialComplex(facets)


class TestSimplexRoundTrip:
    @given(simplices())
    def test_round_trip_identity(self, sigma):
        assert decode_simplex(encode_simplex(sigma)) == sigma

    @given(simplices())
    def test_encoding_is_canonical(self, sigma):
        # Same simplex → same wire record → usable as a dedup/memo key.
        again = Simplex(reversed(sigma.vertices))
        assert encode_simplex(again) == encode_simplex(sigma)
        assert hash(encode_simplex(again)) == hash(encode_simplex(sigma))

    @given(simplices(), simplices())
    def test_distinct_simplices_encode_distinctly(self, a, b):
        assert (encode_simplex(a) == encode_simplex(b)) == (a == b)


class TestComplexRoundTrip:
    @given(complexes())
    def test_round_trip_identity(self, complex_):
        assert decode_complex(encode_complex(complex_)) == complex_

    @given(complexes())
    def test_encoding_is_canonical(self, complex_):
        rebuilt = SimplicialComplex(list(complex_.facets))
        assert encode_complex(rebuilt) == encode_complex(complex_)

    @given(complexes())
    def test_facet_count(self, complex_):
        wire = encode_complex(complex_)
        assert wire.facet_count == len(complex_.facets)

    @given(complexes())
    def test_checked_decode_matches_trusted_decode(self, complex_):
        wire = encode_complex(complex_)
        assert decode_complex(wire, check=True) == decode_complex(wire)

    def test_empty_complex_round_trips(self):
        empty = SimplicialComplex.empty()
        wire = encode_complex(empty)
        assert wire.pairs == () and wire.masks == ()
        assert decode_complex(wire) == empty


class TestVertexTable:
    @given(st.lists(st.tuples(colors, values), min_size=1, max_size=6))
    def test_interning_is_idempotent(self, pairs):
        table = VertexTable()
        first = [table.add(Vertex(c, v)) for c, v in pairs]
        second = [table.add(Vertex(c, v)) for c, v in pairs]
        assert first == second
        assert len(table) == len({Vertex(c, v) for c, v in pairs})

    @given(simplices())
    def test_mask_round_trip(self, sigma):
        table = VertexTable()
        assert (
            table.decode_mask(table.encode_mask_interning(sigma)) == sigma
        )

    @given(simplices())
    def test_encode_mask_is_strict(self, sigma):
        # Regression: encode_mask used to silently intern unknown
        # vertices, so masks depended on encounter order.  It must now
        # reject vertices the table does not hold.
        table = VertexTable()
        with pytest.raises(ChromaticityError):
            table.encode_mask(sigma)
        # Once the table holds the vertices, strict encoding agrees
        # with the interning builder.
        mask = table.encode_mask_interning(sigma)
        assert table.encode_mask(sigma) == mask

    def test_encode_mask_rejects_stale_table(self):
        table = VertexTable()
        known = Simplex([(1, "a")])
        table.encode_mask_interning(known)
        stale = Simplex([(1, "a"), (2, "b")])
        with pytest.raises(ChromaticityError):
            table.encode_mask(stale)
        # The strict probe must not have grown the table.
        assert len(table) == 1

    def test_decode_mask_rejects_empty_and_foreign_bits(self):
        table = VertexTable()
        table.add(Vertex(1, 0))
        with pytest.raises(ChromaticityError):
            table.decode_mask(0)
        with pytest.raises(ChromaticityError):
            table.decode_mask(0b10)
