"""Unit tests for chromatic vertices and the structural sort key."""

from fractions import Fraction

import pytest

from repro.topology import Vertex
from repro.topology.vertex import value_sort_key


class TestVertexBasics:
    def test_color_and_value_accessors(self):
        vertex = Vertex(3, "payload")
        assert vertex.color == 3
        assert vertex.value == "payload"

    def test_color_must_be_int(self):
        with pytest.raises(TypeError):
            Vertex("1", "x")

    def test_as_pair_round_trip(self):
        vertex = Vertex(2, 42)
        assert vertex.as_pair() == (2, 42)

    def test_with_value_keeps_color(self):
        vertex = Vertex(1, "old")
        updated = vertex.with_value("new")
        assert updated.color == 1
        assert updated.value == "new"
        assert vertex.value == "old"  # immutability

    def test_equality_and_hash(self):
        assert Vertex(1, "x") == Vertex(1, "x")
        assert Vertex(1, "x") != Vertex(2, "x")
        assert Vertex(1, "x") != Vertex(1, "y")
        assert hash(Vertex(1, "x")) == hash(Vertex(1, "x"))

    def test_not_equal_to_plain_tuple(self):
        assert Vertex(1, "x") != (1, "x")

    def test_repr_mentions_color_and_value(self):
        text = repr(Vertex(7, "v"))
        assert "7" in text
        assert "v" in text


class TestVertexOrdering:
    def test_orders_by_color_first(self):
        assert Vertex(1, "zzz") < Vertex(2, "aaa")

    def test_same_color_orders_by_value(self):
        assert Vertex(1, Fraction(1, 4)) < Vertex(1, Fraction(1, 2))

    def test_sorting_is_deterministic_across_types(self):
        vertices = [
            Vertex(1, "s"),
            Vertex(1, 3),
            Vertex(1, Fraction(1, 2)),
            Vertex(1, (1, 2)),
            Vertex(1, None),
        ]
        once = sorted(vertices)
        twice = sorted(reversed(vertices))
        assert once == twice


class TestValueSortKey:
    def test_numbers_order_numerically(self):
        assert value_sort_key(Fraction(1, 3)) < value_sort_key(Fraction(1, 2))
        assert value_sort_key(1) < value_sort_key(2)

    def test_int_and_fraction_interleave(self):
        assert value_sort_key(Fraction(3, 2)) < value_sort_key(2)

    def test_bool_has_own_tag(self):
        assert value_sort_key(True)[0] == "bool"
        assert value_sort_key(1)[0] == "num"

    def test_tuple_recursive(self):
        assert value_sort_key((1, 2)) < value_sort_key((1, 3))

    def test_frozenset_order_insensitive(self):
        assert value_sort_key(frozenset({1, 2})) == value_sort_key(
            frozenset({2, 1})
        )

    def test_mixed_types_never_raise(self):
        keys = [value_sort_key(v) for v in [1, "a", (1,), frozenset(), None]]
        assert sorted(keys) == sorted(keys)  # comparable without TypeError
