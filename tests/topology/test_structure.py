"""Unit tests for pseudomanifolds, boundaries, and joins."""

import pytest

from repro.errors import ChromaticityError
from repro.models import standard_chromatic_subdivision
from repro.topology import (
    Simplex,
    SimplicialComplex,
    boundary_complex,
    is_pseudomanifold,
    join_complexes,
    ridge_incidence,
)


@pytest.fixture
def subdivision(triangle):
    return standard_chromatic_subdivision(triangle)


class TestRidgeIncidence:
    def test_single_triangle(self, triangle):
        incidence = ridge_incidence(SimplicialComplex.from_simplex(triangle))
        # Three edges, each in the single facet.
        assert len(incidence) == 3
        assert all(len(f) == 1 for f in incidence.values())

    def test_subdivision_interior_edges_have_two_facets(self, subdivision):
        incidence = ridge_incidence(subdivision)
        counts = sorted(len(f) for f in incidence.values())
        assert set(counts) == {1, 2}
        # f-vector (12, 24, 13): 24 edges total.
        assert len(incidence) == 24

    def test_zero_dim_complex_has_no_ridges(self):
        complex_ = SimplicialComplex([Simplex([(1, "a")])])
        assert ridge_incidence(complex_) == {}


class TestPseudomanifold:
    def test_subdivision_is_pseudomanifold(self, subdivision):
        assert is_pseudomanifold(subdivision)

    def test_single_simplex_is_pseudomanifold(self, triangle):
        assert is_pseudomanifold(SimplicialComplex.from_simplex(triangle))

    def test_impure_is_not(self):
        complex_ = SimplicialComplex(
            [Simplex([(1, "a"), (2, "b")]), Simplex([(3, "c")])]
        )
        assert not is_pseudomanifold(complex_)

    def test_three_triangles_on_one_edge_fail(self):
        shared = [(1, "a"), (2, "b")]
        complex_ = SimplicialComplex(
            [
                Simplex(shared + [(3, "x")]),
                Simplex(shared + [(3, "y")]),
                Simplex(shared + [(3, "z")]),
            ]
        )
        assert not is_pseudomanifold(complex_)

    def test_disconnected_fails_unless_allowed(self, triangle):
        other = Simplex([(1, "x"), (2, "y"), (3, "z")])
        complex_ = SimplicialComplex([triangle, other])
        assert not is_pseudomanifold(complex_)
        assert is_pseudomanifold(complex_, require_connected=False)

    def test_empty_is_not(self):
        assert not is_pseudomanifold(SimplicialComplex.empty())

    def test_snapshot_complex_is_not_pseudomanifold(
        self, snapshot_model, triangle
    ):
        # The snapshot one-round complex is NOT a subdivision: extra
        # facets overlap, breaking the two-per-ridge condition.
        complex_ = snapshot_model.protocol_complex(
            SimplicialComplex.from_simplex(triangle), 1
        )
        assert not is_pseudomanifold(complex_)


class TestBoundary:
    def test_boundary_of_triangle(self, triangle):
        boundary = boundary_complex(SimplicialComplex.from_simplex(triangle))
        assert len(boundary.facets) == 3
        assert boundary.dim == 1

    def test_boundary_of_subdivision_is_subdivided_boundary(
        self, iis, subdivision, triangle
    ):
        boundary = boundary_complex(subdivision)
        # Each original edge subdivides into 3 edges: 9 boundary edges.
        assert len(boundary.facets) == 9
        # And it equals the union of the subdivided proper faces of σ.
        expected = SimplicialComplex(
            facet
            for face in triangle.proper_faces()
            if face.dim == 1
            for facet in iis.protocol_complex(
                SimplicialComplex.from_simplex(face), 1
            ).facets
        )
        assert boundary.simplices == expected.simplices

    def test_boundary_is_a_cycle(self, subdivision):
        # Every boundary vertex lies in exactly two boundary edges.
        boundary = boundary_complex(subdivision)
        for vertex in boundary.vertices:
            containing = [f for f in boundary.facets if vertex in f]
            assert len(containing) == 2
        assert boundary.euler_characteristic() == 0  # a circle


class TestJoin:
    def test_join_of_vertices_is_edge(self):
        left = SimplicialComplex([Simplex([(1, "a")])])
        right = SimplicialComplex([Simplex([(2, "b")])])
        joined = join_complexes(left, right)
        assert joined.facets == frozenset({Simplex([(1, "a"), (2, "b")])})

    def test_join_with_empty_is_identity(self, triangle):
        complex_ = SimplicialComplex.from_simplex(triangle)
        assert join_complexes(complex_, SimplicialComplex.empty()) == complex_
        assert join_complexes(SimplicialComplex.empty(), complex_) == complex_

    def test_shared_colors_rejected(self, triangle):
        complex_ = SimplicialComplex.from_simplex(triangle)
        with pytest.raises(ChromaticityError):
            join_complexes(complex_, complex_)

    def test_join_dimension(self):
        left = SimplicialComplex.from_simplex(Simplex([(1, "a"), (2, "b")]))
        right = SimplicialComplex.from_simplex(Simplex([(3, "c")]))
        assert join_complexes(left, right).dim == 2

    def test_protocol_complex_is_not_a_join(self, iis):
        # join(P^(1)({1}), P^(1)({2})) pairs the two SOLO views in one
        # simplex — an execution where both processes see only themselves,
        # which no interleaving realizes (someone always reads the other's
        # earlier write).  The protocol complex is strictly thinner than
        # the join of its face complexes: that missing simplex is the whole
        # content of the consensus impossibility for two processes.
        left = iis.one_round_complex(Simplex([(1, "a")]))
        right = iis.one_round_complex(Simplex([(2, "b")]))
        joined = join_complexes(left, right)
        full = iis.protocol_complex(
            SimplicialComplex.from_simplex(Simplex([(1, "a"), (2, "b")])), 1
        )
        assert not joined.simplices <= full.simplices
        both_solo = next(iter(joined.facets))
        assert both_solo not in full
