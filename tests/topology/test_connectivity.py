"""Unit tests for 1-skeleton connectivity."""

import pytest

from repro.topology import Simplex, SimplicialComplex, Vertex
from repro.topology.connectivity import (
    connected_components,
    is_connected,
    one_skeleton_adjacency,
    shortest_path,
    to_networkx,
)


@pytest.fixture
def path_complex():
    """A path of three edges: the shape used in Corollary 1's proof."""
    return SimplicialComplex(
        [
            Simplex([(1, "s"), (2, "m1")]),
            Simplex([(1, "m2"), (2, "m1")]),
            Simplex([(1, "m2"), (2, "t")]),
        ]
    )


@pytest.fixture
def disconnected():
    return SimplicialComplex([Simplex([(1, "a")]), Simplex([(2, "b")])])


class TestAdjacency:
    def test_adjacency_of_edge(self):
        complex_ = SimplicialComplex.from_simplex(Simplex([(1, "a"), (2, "b")]))
        adjacency = one_skeleton_adjacency(complex_)
        assert adjacency[Vertex(1, "a")] == {Vertex(2, "b")}

    def test_triangle_is_fully_adjacent(self, triangle):
        adjacency = one_skeleton_adjacency(
            SimplicialComplex.from_simplex(triangle)
        )
        assert all(len(neighbors) == 2 for neighbors in adjacency.values())

    def test_isolated_vertices_have_no_neighbors(self, disconnected):
        adjacency = one_skeleton_adjacency(disconnected)
        assert all(not neighbors for neighbors in adjacency.values())


class TestComponents:
    def test_connected_path(self, path_complex):
        assert is_connected(path_complex)
        assert len(connected_components(path_complex)) == 1

    def test_disconnected(self, disconnected):
        assert not is_connected(disconnected)
        assert len(connected_components(disconnected)) == 2

    def test_empty_complex_not_connected(self):
        assert not is_connected(SimplicialComplex.empty())

    def test_subdivision_is_connected(self, iis, triangle):
        assert is_connected(iis.one_round_complex(triangle))


class TestPaths:
    def test_shortest_path_endpoints(self, path_complex):
        path = shortest_path(
            path_complex, Vertex(1, "s"), Vertex(2, "t")
        )
        assert path is not None
        assert path[0] == Vertex(1, "s")
        assert path[-1] == Vertex(2, "t")
        assert len(path) == 4  # s - m1 - m2 - t

    def test_no_path_across_components(self, disconnected):
        assert (
            shortest_path(disconnected, Vertex(1, "a"), Vertex(2, "b"))
            is None
        )

    def test_trivial_path(self, path_complex):
        assert shortest_path(
            path_complex, Vertex(1, "s"), Vertex(1, "s")
        ) == [Vertex(1, "s")]

    def test_unknown_vertex(self, path_complex):
        assert (
            shortest_path(path_complex, Vertex(9, "?"), Vertex(1, "s"))
            is None
        )

    def test_consecutive_path_vertices_are_adjacent(self, iis, triangle):
        complex_ = iis.one_round_complex(triangle)
        vertices = complex_.sorted_vertices()
        path = shortest_path(complex_, vertices[0], vertices[-1])
        adjacency = one_skeleton_adjacency(complex_)
        for left, right in zip(path, path[1:]):
            assert right in adjacency[left]


class TestDeterminism:
    """Regression: mask-native results are ordered by the vertex table."""

    def test_adjacency_keys_follow_table_order(self, iis, triangle):
        complex_ = iis.one_round_complex(triangle)
        adjacency = one_skeleton_adjacency(complex_)
        assert list(adjacency) == complex_.sorted_vertices()

    def test_components_stable_across_runs(self, disconnected):
        first = connected_components(disconnected)
        second = connected_components(disconnected)
        assert first == second
        smallest = [
            min(component, key=lambda v: v._sort_key())
            for component in first
        ]
        assert smallest == sorted(smallest, key=lambda v: v._sort_key())


class TestNetworkxExport:
    def test_export_matches_adjacency(self, path_complex):
        graph = to_networkx(path_complex)
        assert graph.number_of_nodes() == len(path_complex.vertices)
        assert graph.number_of_edges() == 3
