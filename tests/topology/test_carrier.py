"""Unit tests for carrier maps."""

import pytest

from repro.errors import TaskSpecificationError
from repro.topology import CarrierMap, Simplex, SimplicialComplex


@pytest.fixture
def domain(triangle):
    return SimplicialComplex.from_simplex(triangle)


def constant_delta(sigma):
    """A monotone, chromatic toy specification: relabel values to 0."""
    return SimplicialComplex.from_simplex(
        Simplex((i, 0) for i in sorted(sigma.ids))
    )


class TestEvaluation:
    def test_callable_and_memoized(self, domain, triangle):
        calls = []

        def delta(sigma):
            calls.append(sigma)
            return constant_delta(sigma)

        carrier = CarrierMap(domain, delta)
        first = carrier(triangle)
        second = carrier(triangle)
        assert first == second
        assert len(calls) == 1

    def test_from_mapping(self, domain, triangle):
        table = {
            simplex: constant_delta(simplex) for simplex in domain
        }
        carrier = CarrierMap.from_mapping(domain, table)
        assert carrier(triangle) == constant_delta(triangle)

    def test_from_mapping_missing_entry(self, domain, triangle):
        carrier = CarrierMap.from_mapping(domain, {})
        with pytest.raises(TaskSpecificationError):
            carrier(triangle)

    def test_mask_key_shares_equal_but_distinct_simplices(self, domain):
        calls = []

        def delta(sigma):
            calls.append(sigma)
            return constant_delta(sigma)

        carrier = CarrierMap(domain, delta)
        first = Simplex([(1, "a"), (2, "b")])
        second = Simplex([(2, "b"), (1, "a")])
        assert first is not second
        assert carrier(first) == carrier(second)
        # Both encode to the same (table_id, mask) key: one evaluation.
        assert len(calls) == 1

    def test_foreign_simplex_falls_back_and_memoizes(self, domain):
        calls = []

        def delta(sigma):
            calls.append(sigma)
            return constant_delta(sigma)

        carrier = CarrierMap(domain, delta)
        # Not a vertex of the domain: bypasses the mask key entirely.
        foreign = Simplex([(1, "elsewhere")])
        assert carrier(foreign) == constant_delta(foreign)
        assert carrier(foreign) == constant_delta(foreign)
        assert len(calls) == 1


class TestStructuralChecks:
    def test_monotone(self, domain):
        carrier = CarrierMap(domain, constant_delta)
        assert carrier.is_monotone()

    def test_non_monotone_detected(self, domain, triangle):
        def delta(sigma):
            if sigma.dim == 0:
                # A vertex maps to something NOT inside the edge images.
                return SimplicialComplex.from_simplex(
                    Simplex([(next(iter(sigma.ids)), "stray")])
                )
            return constant_delta(sigma)

        carrier = CarrierMap(domain, delta)
        assert not carrier.is_monotone()

    def test_chromatic(self, domain):
        carrier = CarrierMap(domain, constant_delta)
        assert carrier.is_chromatic()

    def test_non_chromatic_detected(self, domain):
        def delta(sigma):
            return SimplicialComplex.from_simplex(Simplex([(99, 0)]))

        assert not CarrierMap(domain, delta).is_chromatic()

    def test_agrees_on(self, domain):
        left = CarrierMap(domain, constant_delta)
        right = CarrierMap(domain, constant_delta)
        assert left.agrees_on(right)

    def test_total_image(self, domain, triangle):
        carrier = CarrierMap(domain, constant_delta)
        image = carrier.total_image()
        assert image == constant_delta(triangle)
