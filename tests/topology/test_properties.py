"""Property-based tests for the topology substrate (hypothesis)."""

from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

from repro.topology import Simplex, SimplicialComplex, Vertex, View
from repro.topology.vertex import value_sort_key

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

colors = st.integers(min_value=1, max_value=5)
values = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.fractions(
        min_value=Fraction(0), max_value=Fraction(1), max_denominator=8
    ),
    st.text(alphabet="abc", min_size=0, max_size=2),
)


@st.composite
def simplices(draw, max_colors=4):
    pool = draw(
        st.lists(colors, min_size=1, max_size=max_colors, unique=True)
    )
    return Simplex((c, draw(values)) for c in pool)


@st.composite
def complexes(draw, max_facets=4):
    facets = draw(st.lists(simplices(), min_size=1, max_size=max_facets))
    return SimplicialComplex(facets)


# ---------------------------------------------------------------------------
# Vertex / value ordering
# ---------------------------------------------------------------------------


@given(values, values)
def test_value_sort_key_total(a, b):
    ka, kb = value_sort_key(a), value_sort_key(b)
    assert (ka < kb) or (kb < ka) or (ka == kb)


@given(values, values, values)
def test_value_sort_key_transitive(a, b, c):
    ka, kb, kc = sorted([value_sort_key(a), value_sort_key(b), value_sort_key(c)])
    assert ka <= kb <= kc


@given(st.lists(st.tuples(colors, values), min_size=1, max_size=6))
def test_vertex_sorting_stable(pairs):
    vertices = [Vertex(c, v) for c, v in pairs]
    assert sorted(vertices) == sorted(reversed(vertices))


# ---------------------------------------------------------------------------
# Simplices
# ---------------------------------------------------------------------------


@given(simplices())
def test_simplex_faces_closed_under_inclusion(simplex):
    faces = set(simplex.faces())
    for face in faces:
        for sub in face.faces():
            assert sub in faces


@given(simplices())
def test_simplex_face_count(simplex):
    # 2^(dim+1) - 1 non-empty subsets.
    assert len(list(simplex.faces())) == 2 ** len(simplex) - 1


@given(simplices())
def test_projection_roundtrip(simplex):
    assert simplex.proj(simplex.ids) == simplex


@given(simplices())
def test_every_face_is_a_face(simplex):
    for face in simplex.faces():
        assert face.is_face_of(simplex)


# ---------------------------------------------------------------------------
# Complexes
# ---------------------------------------------------------------------------


@given(complexes())
def test_complex_downward_closed(complex_):
    for simplex in complex_.simplices:
        for face in simplex.faces():
            assert face in complex_


@given(complexes())
def test_facets_are_maximal(complex_):
    for facet in complex_.facets:
        for other in complex_.facets:
            if facet != other:
                assert not facet.is_face_of(other)


@given(complexes())
def test_f_vector_sums_to_simplex_count(complex_):
    assert sum(complex_.f_vector()) == len(complex_.simplices)


@given(complexes(), complexes())
def test_union_contains_both(left, right):
    union = left.union(right)
    assert left.simplices <= union.simplices
    assert right.simplices <= union.simplices


@given(complexes(), complexes())
def test_intersection_contained_in_both(left, right):
    shared = left.intersection(right)
    assert shared.simplices <= left.simplices
    assert shared.simplices <= right.simplices


@given(complexes())
def test_skeleton_dimension_bound(complex_):
    for k in range(complex_.dim + 1):
        assert complex_.skeleton(k).dim <= k


@given(complexes())
def test_proj_is_subcomplex_on_colors(complex_):
    for color in complex_.ids:
        projected = complex_.proj([color])
        assert projected.ids <= {color}
        assert projected.simplices <= complex_.simplices


# ---------------------------------------------------------------------------
# Views
# ---------------------------------------------------------------------------


@given(st.dictionaries(colors, values, min_size=0, max_size=5))
def test_view_roundtrip(mapping):
    view = View(mapping)
    assert dict(view.items) == mapping
    assert view == View(list(mapping.items()))


@given(st.dictionaries(colors, values, min_size=1, max_size=5))
def test_restrict_then_subview(mapping):
    view = View(mapping)
    some = list(mapping)[: max(1, len(mapping) // 2)]
    assert view.restrict(some).is_subview_of(view)
