"""Mask-sweep kernels vs object-set oracles on randomized complexes.

Three groups, mirroring the AUD016 contract over a wilder input
distribution than the audit sees:

* kernel unit tests pin the batch primitives of
  :mod:`repro.topology.kernels` on hand-checkable mask arrays;
* hypothesis parity tests pit the mask-native connectivity and
  structure algorithms against the retained object-set oracles of
  :mod:`repro.topology.reference`;
* lazy-materialization tests prove the sweeps are pure mask code: on a
  wire-born complex no ``Simplex`` may be decoded during a sweep, and
  under the RPR006 sanitizer a cross-table batch is caught in the
  kernel itself.
"""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MaskProvenanceError
from repro.topology import (
    Simplex,
    SimplicialComplex,
    connected_components,
    decode_complex,
    encode_complex,
    is_connected,
    one_skeleton_adjacency,
    shortest_path,
)
from repro.topology import reference
from repro.topology.kernels import (
    bfs_parents,
    component_count,
    component_labels,
    facet_adjacency,
    filter_intersecting,
    filter_subsets,
    filter_supersets,
    iter_ridges,
    mask_components,
    max_popcount,
    pairwise_intersections,
    pairwise_unions,
    popcount_sweep,
    ridge_table,
    vertex_adjacency,
)
from repro.topology.sanitize import sanitizer
from repro.topology.structure import (
    boundary_complex,
    is_pseudomanifold,
    join_complexes,
    ridge_incidence,
)
from repro.topology.table import VertexTable

colors = st.integers(min_value=1, max_value=5)
values = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.fractions(
        min_value=Fraction(0), max_value=Fraction(1), max_denominator=8
    ),
    st.text(alphabet="abc", min_size=0, max_size=2),
)


@st.composite
def simplices(draw, max_colors=4):
    pool = draw(
        st.lists(colors, min_size=1, max_size=max_colors, unique=True)
    )
    return Simplex((c, draw(values)) for c in pool)


@st.composite
def families(draw, max_size=6):
    return draw(st.lists(simplices(), min_size=1, max_size=max_size))


class TestKernelPrimitives:
    def test_popcount_sweep(self):
        assert popcount_sweep([0b1011, 0b1, 0, 0b1111]) == [3, 1, 0, 4]
        assert popcount_sweep([]) == []

    def test_max_popcount(self):
        assert max_popcount([0b11, 0b10110, 0b1]) == 3
        assert max_popcount([]) == 0

    def test_containment_filters(self):
        masks = [0b001, 0b011, 0b110, 0b111]
        assert filter_subsets(masks, 0b011) == [0b001, 0b011]
        assert filter_supersets(masks, 0b010) == [0b011, 0b110, 0b111]
        assert filter_intersecting(masks, 0b100) == [0b110, 0b111]

    def test_pairwise_products(self):
        left, right = [0b011, 0b100], [0b110, 0b001]
        assert pairwise_intersections(left, right) == [0b010, 0b001, 0b100]
        assert pairwise_unions(left, right) == [
            0b111,
            0b011,
            0b110,
            0b101,
        ]

    def test_iter_ridges_clears_one_bit_each(self):
        assert list(iter_ridges(0b1101)) == [0b1100, 0b1001, 0b0101]
        assert list(iter_ridges(0b0100)) == []
        assert list(iter_ridges(0)) == []

    def test_ridge_table_positions(self):
        # Two triangles sharing the edge {0,1}, plus an isolated vertex.
        masks = [0b0111, 0b1011, 0b10000]
        table = ridge_table(masks)
        assert table[0b0011] == [0, 1]
        assert table[0b0110] == [0]
        assert table[0b1010] == [1]
        assert 0b10000 not in table

    def test_vertex_adjacency(self):
        adjacency = vertex_adjacency([0b0111, 0b11000], 5)
        assert adjacency == [0b00110, 0b00101, 0b00011, 0b10000, 0b01000]

    def test_facet_adjacency_via_shared_ridges(self):
        masks = [0b0111, 0b1011, 0b110000]
        adjacency = facet_adjacency(masks)
        assert adjacency == [0b010, 0b001, 0b000]

    def test_component_labels_and_count(self):
        adjacency = [0b0010, 0b0001, 0b1000, 0b0100, 0b00000]
        assert component_labels(adjacency) == [0, 0, 2, 2, 4]
        assert component_count(adjacency) == 3

    def test_mask_components_orders_by_lowest_bit(self):
        # {0,1} ∪ {3,4} with bit 2 unused by any mask.
        assert mask_components([0b00011, 0b11000], 5) == [0b00011, 0b11000]
        assert mask_components([], 5) == []

    def test_bfs_parents_shortest_tree(self):
        # Path graph 0 – 1 – 2 – 3.
        adjacency = [0b0010, 0b0101, 0b1010, 0b0100]
        parents = bfs_parents(adjacency, 0)
        assert parents == [0, 0, 1, 2]
        # Early exit at the goal still fixes the goal's parent.
        assert bfs_parents(adjacency, 0, goal=2)[2] == 1

    def test_bfs_parents_unreachable_is_minus_one(self):
        parents = bfs_parents([0b10, 0b01, 0b00], 0)
        assert parents == [0, 0, -1]


class TestConnectivityParity:
    @given(families())
    def test_adjacency_matches_oracle(self, family):
        complex_ = SimplicialComplex(family)
        assert one_skeleton_adjacency(
            complex_
        ) == reference.adjacency_reference(complex_.facets)

    @given(families())
    def test_components_match_oracle(self, family):
        complex_ = SimplicialComplex(family)
        assert connected_components(
            complex_
        ) == reference.components_reference(complex_.facets)
        assert is_connected(complex_) == (
            len(reference.components_reference(complex_.facets)) == 1
        )

    @given(families())
    def test_shortest_path_matches_oracle_length(self, family):
        complex_ = SimplicialComplex(family)
        vertices = complex_.sorted_vertices()
        start, goal = vertices[0], vertices[-1]
        path = shortest_path(complex_, start, goal)
        oracle = reference.shortest_path_reference(
            complex_.facets, start, goal
        )
        if oracle is None:
            assert path is None
        else:
            assert path is not None
            assert len(path) == len(oracle)
            assert path[0] == start and path[-1] == goal
            adjacency = reference.adjacency_reference(complex_.facets)
            for left, right in zip(path, path[1:]):
                assert right in adjacency[left]


class TestStructureParity:
    @given(families())
    def test_ridge_incidence_matches_oracle(self, family):
        complex_ = SimplicialComplex(family)
        live = {
            ridge: frozenset(found)
            for ridge, found in ridge_incidence(complex_).items()
        }
        oracle = {
            ridge: frozenset(found)
            for ridge, found in reference.ridge_incidence_reference(
                complex_.facets
            ).items()
        }
        assert live == oracle

    @given(families())
    def test_pseudomanifold_matches_oracle(self, family):
        complex_ = SimplicialComplex(family)
        for require_connected in (True, False):
            assert is_pseudomanifold(
                complex_, require_connected
            ) == reference.is_pseudomanifold_reference(
                complex_.facets, require_connected
            )

    @given(families())
    def test_boundary_matches_oracle(self, family):
        complex_ = SimplicialComplex(family)
        assert boundary_complex(
            complex_
        ).facets == reference.boundary_reference(complex_.facets)

    @given(families(max_size=4), families(max_size=4))
    def test_join_matches_pruning_oracle(self, left, right):
        # Shift the right side's colors out of the left's range so the
        # join is chromatic; the kernel join skips the pruning pass and
        # must still equal the oracle that prunes defensively.
        shifted = [
            Simplex(
                (vertex.color + 10, vertex.value)
                for vertex in simplex.vertices
            )
            for simplex in right
        ]
        a = SimplicialComplex(left)
        b = SimplicialComplex(shifted)
        assert join_complexes(a, b).facets == reference.join_reference(
            a.facets, b.facets
        )


class TestLazyMaterialization:
    """Pure-mask sweeps never decode a Simplex from the index."""

    def _wire_born(self, family):
        reborn = decode_complex(encode_complex(SimplicialComplex(family)))
        assert reborn._facets is None
        return reborn

    @given(families())
    def test_sweeps_leave_wire_born_facets_unmaterialized(self, family):
        reborn = self._wire_born(family)
        connected_components(reborn)
        is_connected(reborn)
        is_pseudomanifold(reborn)
        is_pseudomanifold(reborn, require_connected=False)
        boundary = boundary_complex(reborn)
        assert reborn._facets is None
        assert boundary._facets is None or boundary.is_empty()

    def test_mask_sweep_never_decodes(self, monkeypatch, triangle):
        reborn = self._wire_born([triangle])

        def boom(self, mask):
            raise AssertionError(
                "a pure-mask sweep decoded a Simplex"
            )

        monkeypatch.setattr(VertexTable, "decode_mask", boom)
        monkeypatch.setattr(VertexTable, "decode_mask_trusted", boom)
        assert is_pseudomanifold(reborn)
        assert is_connected(reborn)
        assert len(connected_components(reborn)) == 1
        assert boundary_complex(reborn).facet_count == 3

    def test_sweeps_run_clean_under_sanitizer(self, triangle, edge):
        with sanitizer():
            complex_ = SimplicialComplex([triangle])
            assert is_pseudomanifold(complex_)
            assert is_connected(complex_)
            one_skeleton_adjacency(complex_)
            boundary_complex(complex_)
            shortest_path(
                complex_,
                triangle.vertices[0],
                triangle.vertices[-1],
            )
            other = SimplicialComplex([Simplex([(7, "x"), (8, "y")])])
            join_complexes(complex_, other)

    def test_sanitizer_catches_cross_table_batch(self, triangle):
        with sanitizer():
            left = SimplicialComplex([triangle])
            right = SimplicialComplex([Simplex([(1, "zz"), (2, "ww")])])
            _, left_masks = left._ensure_index()
            _, right_masks = right._ensure_index()
            with pytest.raises(MaskProvenanceError):
                pairwise_unions(left_masks, right_masks)


class TestDeterminism:
    @given(families())
    def test_adjacency_keys_in_table_order(self, family):
        complex_ = SimplicialComplex(family)
        assert (
            list(one_skeleton_adjacency(complex_))
            == complex_.sorted_vertices()
        )

    @given(families())
    def test_components_ordered_by_smallest_vertex(self, family):
        complex_ = SimplicialComplex(family)
        components = connected_components(complex_)
        smallest = [
            min(component, key=lambda v: v._sort_key())
            for component in components
        ]
        assert smallest == sorted(
            smallest, key=lambda v: v._sort_key()
        )
