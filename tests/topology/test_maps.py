"""Unit tests for chromatic simplicial maps."""

import pytest

from repro.errors import ChromaticityError, SimplicialityError
from repro.topology import Simplex, SimplicialComplex, SimplicialMap, Vertex


@pytest.fixture
def source():
    return SimplicialComplex.from_simplex(
        Simplex([(1, "a"), (2, "b"), (3, "c")])
    )


@pytest.fixture
def target():
    return SimplicialComplex.from_simplex(
        Simplex([(1, "A"), (2, "B"), (3, "C")])
    )


def capitalizing_map(source, target):
    return SimplicialMap.from_function(
        source, target, lambda v: Vertex(v.color, v.value.upper())
    )


class TestConstruction:
    def test_valid_map(self, source, target):
        mapping = capitalizing_map(source, target)
        assert mapping(Vertex(1, "a")) == Vertex(1, "A")

    def test_missing_vertex_rejected(self, source, target):
        with pytest.raises(SimplicialityError):
            SimplicialMap(source, target, {Vertex(1, "a"): Vertex(1, "A")})

    def test_non_chromatic_rejected(self, source, target):
        vertex_map = {
            Vertex(1, "a"): Vertex(2, "B"),
            Vertex(2, "b"): Vertex(1, "A"),
            Vertex(3, "c"): Vertex(3, "C"),
        }
        with pytest.raises(ChromaticityError):
            SimplicialMap(source, target, vertex_map)

    def test_image_outside_target_rejected(self, source, target):
        vertex_map = {
            Vertex(1, "a"): Vertex(1, "A"),
            Vertex(2, "b"): Vertex(2, "nope"),
            Vertex(3, "c"): Vertex(3, "C"),
        }
        with pytest.raises(SimplicialityError):
            SimplicialMap(source, target, vertex_map)

    def test_non_simplicial_rejected(self):
        # Target where the full image triangle is missing: two disjoint
        # edges only.
        src = SimplicialComplex.from_simplex(Simplex([(1, "a"), (2, "b")]))
        tgt = SimplicialComplex(
            [Simplex([(1, "A")]), Simplex([(2, "B")])]
        )
        vertex_map = {
            Vertex(1, "a"): Vertex(1, "A"),
            Vertex(2, "b"): Vertex(2, "B"),
        }
        with pytest.raises(SimplicialityError):
            SimplicialMap(src, tgt, vertex_map)


class TestApplication:
    def test_apply_simplex(self, source, target):
        mapping = capitalizing_map(source, target)
        image = mapping.apply_simplex(Simplex([(1, "a"), (3, "c")]))
        assert image == Simplex([(1, "A"), (3, "C")])

    def test_apply_complex_and_image(self, source, target):
        mapping = capitalizing_map(source, target)
        assert mapping.image() == target

    def test_sends_into(self, source, target):
        mapping = capitalizing_map(source, target)
        sub = SimplicialComplex.from_simplex(Simplex([(1, "a"), (2, "b")]))
        allowed = SimplicialComplex.from_simplex(
            Simplex([(1, "A"), (2, "B")])
        )
        assert mapping.sends_into(sub, allowed)
        assert not mapping.sends_into(source, allowed)

    def test_restrict(self, source, target):
        mapping = capitalizing_map(source, target)
        sub = SimplicialComplex.from_simplex(Simplex([(1, "a")]))
        restricted = mapping.restrict(sub)
        assert restricted.source == sub
        assert restricted(Vertex(1, "a")) == Vertex(1, "A")


class TestAlgebra:
    def test_identity(self, source):
        identity = SimplicialMap.identity(source)
        assert identity.image() == source

    def test_composition(self, source, target):
        first = capitalizing_map(source, target)
        lower = SimplicialMap.from_function(
            target, source, lambda v: Vertex(v.color, v.value.lower())
        )
        round_trip = lower.compose(first)
        assert round_trip.source == source
        assert round_trip(Vertex(2, "b")) == Vertex(2, "b")

    def test_composition_mismatch_rejected(self, source, target):
        first = capitalizing_map(source, target)
        other = SimplicialMap.identity(
            SimplicialComplex.from_simplex(Simplex([(9, "q")]))
        )
        with pytest.raises(SimplicialityError):
            first.compose(other)

    def test_equality(self, source, target):
        assert capitalizing_map(source, target) == capitalizing_map(
            source, target
        )
