"""Unit tests for chromatic simplicial complexes."""

import pytest

from repro.topology import Simplex, SimplicialComplex, Vertex


@pytest.fixture
def two_triangles():
    """Two triangles sharing the edge on colors {1, 2}."""
    left = Simplex([(1, "a"), (2, "b"), (3, "c")])
    right = Simplex([(1, "a"), (2, "b"), (3, "z")])
    return SimplicialComplex([left, right])


class TestConstruction:
    def test_facets_pruned(self):
        big = Simplex([(1, "a"), (2, "b")])
        small = big.proj([1])
        complex_ = SimplicialComplex([big, small])
        assert complex_.facets == frozenset({big})

    def test_empty(self):
        empty = SimplicialComplex.empty()
        assert empty.is_empty()
        assert empty.dim == -1
        assert empty.f_vector() == ()

    def test_from_simplex_contains_faces(self, triangle):
        complex_ = SimplicialComplex.from_simplex(triangle)
        assert len(complex_.simplices) == 7
        assert triangle.proj([2]) in complex_

    def test_equal_complexes(self, triangle):
        assert SimplicialComplex.from_simplex(triangle) == SimplicialComplex(
            [triangle]
        )
        assert hash(SimplicialComplex([triangle])) == hash(
            SimplicialComplex([triangle])
        )

    def test_pruning_mixed_dimension_chain(self):
        # A whole inclusion chain collapses to its top element, regardless
        # of the order the candidates arrive in.
        top = Simplex([(1, "a"), (2, "b"), (3, "c")])
        edge = top.proj([1, 2])
        point = top.proj([2])
        for candidates in ([top, edge, point], [point, edge, top]):
            assert SimplicialComplex(candidates).facets == frozenset({top})

    def test_pruning_keeps_incomparable_simplices(self):
        # Same-dimension distinct simplices can never nest.
        left = Simplex([(1, "a"), (2, "b")])
        right = Simplex([(1, "a"), (2, "z")])
        lone = Simplex([(3, "c")])
        complex_ = SimplicialComplex([left, right, lone, left.proj([1])])
        assert complex_.facets == frozenset({left, right, lone})

    def test_from_maximal_equals_pruning_constructor(self, two_triangles):
        trusted = SimplicialComplex.from_maximal(two_triangles.facets)
        assert trusted == two_triangles
        assert hash(trusted) == hash(two_triangles)
        assert trusted.simplices == two_triangles.simplices
        assert trusted.f_vector() == two_triangles.f_vector()

    def test_from_maximal_accepts_any_iterable(self, triangle):
        from_iter = SimplicialComplex.from_maximal(iter([triangle]))
        assert from_iter == SimplicialComplex([triangle])


class TestAccessors:
    def test_vertices(self, two_triangles):
        assert len(two_triangles.vertices) == 4

    def test_ids(self, two_triangles):
        assert two_triangles.ids == frozenset({1, 2, 3})

    def test_dim_and_purity(self, two_triangles):
        assert two_triangles.dim == 2
        assert two_triangles.is_pure()

    def test_impure(self):
        complex_ = SimplicialComplex(
            [Simplex([(1, "a"), (2, "b")]), Simplex([(3, "c")])]
        )
        assert not complex_.is_pure()

    def test_contains(self, two_triangles):
        assert Simplex([(1, "a"), (2, "b")]) in two_triangles
        assert Simplex([(3, "c"), (3, "z")]) if False else True
        assert Simplex([(1, "zzz")]) not in two_triangles

    def test_contains_chromatic_set(self, two_triangles):
        assert two_triangles.contains_chromatic_set(
            [Vertex(1, "a"), Vertex(2, "b")]
        )
        # conflicting colors are not a simplex at all
        assert not two_triangles.contains_chromatic_set(
            [Vertex(1, "a"), Vertex(1, "a2")]
        )
        # cross-facet pairing {(3,"c"),(3,"z")} is not chromatic either
        assert not two_triangles.contains_chromatic_set(
            [Vertex(3, "c"), Vertex(3, "z")]
        )

    def test_len_counts_all_simplices(self, triangle):
        assert len(SimplicialComplex.from_simplex(triangle)) == 7

    def test_sorted_accessors_are_deterministic(self, two_triangles):
        assert (
            two_triangles.sorted_vertices()
            == sorted(two_triangles.vertices, key=lambda v: v._sort_key())
        )
        assert len(two_triangles.sorted_facets()) == 2


class TestDerivedComplexes:
    def test_proj(self, two_triangles):
        projected = two_triangles.proj([1, 2])
        assert projected.facets == frozenset({Simplex([(1, "a"), (2, "b")])})

    def test_proj_to_absent_color_is_empty(self, two_triangles):
        assert two_triangles.proj([9]).is_empty()

    def test_skeleton(self, triangle):
        complex_ = SimplicialComplex.from_simplex(triangle)
        skeleton = complex_.skeleton(1)
        assert skeleton.dim == 1
        assert len(skeleton.facets) == 3  # the three edges

    def test_skeleton_negative(self, triangle):
        assert SimplicialComplex.from_simplex(triangle).skeleton(-1).is_empty()

    def test_union_and_intersection(self, triangle):
        left = SimplicialComplex.from_simplex(triangle.proj([1, 2]))
        right = SimplicialComplex.from_simplex(triangle.proj([2, 3]))
        union = left.union(right)
        assert len(union.facets) == 2
        shared = left.intersection(right)
        assert shared.facets == frozenset({triangle.proj([2])})

    def test_star(self, two_triangles):
        star = two_triangles.star(Vertex(3, "c"))
        assert len(star.facets) == 1

    def test_vertices_of_color(self, two_triangles):
        assert len(two_triangles.vertices_of_color(3)) == 2
        assert two_triangles.vertices_of_color(9) == []


class TestInvariants:
    def test_f_vector_triangle(self, triangle):
        assert SimplicialComplex.from_simplex(triangle).f_vector() == (3, 3, 1)

    def test_euler_characteristic_ball(self, triangle):
        # A simplex is contractible: χ = 1.
        assert SimplicialComplex.from_simplex(triangle).euler_characteristic() == 1

    def test_euler_characteristic_two_triangles(self, two_triangles):
        # Two triangles glued along one edge are still contractible.
        assert two_triangles.euler_characteristic() == 1

    def test_simplices_of_dim(self, two_triangles):
        assert len(two_triangles.simplices_of_dim(2)) == 2
        assert len(two_triangles.simplices_of_dim(0)) == 4
