"""Runtime mask-provenance sanitizer (the dynamic half of RPR006)."""

import os
import pickle

import pytest

from repro.errors import MaskProvenanceError
from repro.topology import Simplex, VertexTable
from repro.topology import sanitize
from repro.topology.sanitize import SanitizedMask, sanitizer

PAIRS = ((1, "x"), (2, "y"), (3, "z"))
REVERSED_PAIRS = tuple(reversed(PAIRS))

SIMPLEX = Simplex([(1, "x"), (2, "y")])


@pytest.fixture(autouse=True)
def _restore_sanitizer_state():
    """Every test starts from OFF and leaves the flags as it found them.

    The CI smoke runs this very suite under ``REPRO_SANITIZE=1``, where
    the process-wide default is *on*; the activation tests must control
    the flag themselves rather than trust the environment.
    """
    previous = (sanitize.ACTIVE, sanitize.RECORD_ONLY)
    sanitize.disable()
    yield
    sanitize.ACTIVE, sanitize.RECORD_ONLY = previous


class TestActivation:
    def test_env_variable_drives_the_import_time_default(self):
        expected = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        assert sanitize._env_active() is expected

    def test_masks_are_plain_ints_while_disabled(self):
        assert not sanitize.is_active()
        table = VertexTable(PAIRS)
        mask = table.encode_mask(SIMPLEX)
        assert type(mask) is int

    def test_context_manager_tags_and_restores(self):
        table = VertexTable(PAIRS)
        with sanitizer():
            assert sanitize.is_active()
            mask = table.encode_mask(SIMPLEX)
            assert isinstance(mask, SanitizedMask)
            assert mask.table_id == table.table_id
        assert not sanitize.is_active()
        assert type(table.encode_mask(SIMPLEX)) is int

    def test_every_mask_producer_tags(self):
        table = VertexTable(PAIRS)
        with sanitizer():
            produced = [
                table.encode_mask(SIMPLEX),
                table.encode_mask_interning(SIMPLEX),
                table.colors_mask([1, 2]),
                table.full_mask,
            ]
        assert all(isinstance(m, SanitizedMask) for m in produced)
        assert {m.table_id for m in produced} == {table.table_id}


class TestTaggedMaskSemantics:
    def test_tagged_mask_behaves_like_its_int(self):
        table = VertexTable(PAIRS)
        with sanitizer():
            mask = table.encode_mask(SIMPLEX)
        plain = int(mask)
        assert mask == plain
        assert hash(mask) == hash(plain)
        assert {mask: 1}[plain] == 1

    def test_same_table_combinations_stay_tagged(self):
        table = VertexTable(PAIRS)
        with sanitizer():
            m1 = table.encode_mask(SIMPLEX)
            m2 = table.colors_mask([3])
            union = m1 | m2
        assert isinstance(union, SanitizedMask)
        assert union.table_id == table.table_id
        assert union == int(m1) | int(m2)

    def test_plain_int_operands_are_fine(self):
        table = VertexTable(PAIRS)
        with sanitizer():
            mask = table.encode_mask(SIMPLEX)
            assert mask & (mask - 1) == int(mask) & (int(mask) - 1)
            assert 0b1 | mask == 0b1 | int(mask)

    def test_pickle_drops_the_process_local_tag(self):
        table = VertexTable(PAIRS)
        with sanitizer():
            mask = table.encode_mask(SIMPLEX)
        restored = pickle.loads(pickle.dumps(mask))
        assert restored == int(mask)
        assert type(restored) is int


class TestViolations:
    def test_incompatible_bitwise_mix_raises(self):
        with sanitizer():
            left = VertexTable(PAIRS)
            right = VertexTable(REVERSED_PAIRS)
            m1 = left.encode_mask(SIMPLEX)
            m2 = right.encode_mask(SIMPLEX)
            with pytest.raises(MaskProvenanceError, match="RPR006"):
                m1 | m2

    def test_incompatible_decode_raises(self):
        with sanitizer():
            left = VertexTable(PAIRS)
            right = VertexTable(REVERSED_PAIRS)
            mask = left.encode_mask(SIMPLEX)
            with pytest.raises(MaskProvenanceError, match="decode_mask"):
                right.decode_mask(mask)

    def test_untagged_masks_always_decode(self):
        # Wire records and masks born while the sanitizer was off are
        # plain ints; the sanitizer only reports mixes it can prove.
        table = VertexTable(PAIRS)
        plain = table.encode_mask(SIMPLEX)
        with sanitizer():
            assert table.decode_mask(plain) == SIMPLEX

    def test_record_only_collects_instead_of_raising(self):
        sanitize.reset_violations()
        with sanitizer(record_only=True):
            left = VertexTable(PAIRS)
            right = VertexTable(REVERSED_PAIRS)
            mixed = left.encode_mask(SIMPLEX) | right.encode_mask(SIMPLEX)
            assert isinstance(mixed, int)
        found = sanitize.violations()
        sanitize.reset_violations()
        assert len(found) == 1
        assert found[0].rule_id == "RPR006"
        assert sanitize.violations() == []


class TestCompatibleRebuilds:
    def test_pair_identical_tables_are_interchangeable(self):
        # The wire codec and worker processes legitimately rebuild a
        # table with the same pairs; prefix-equal tables must not trip.
        with sanitizer():
            first = VertexTable(PAIRS)
            second = VertexTable(PAIRS)
            assert first.table_id != second.table_id
            mask = first.encode_mask(SIMPLEX)
            assert second.decode_mask(mask) == SIMPLEX
            combined = mask | second.colors_mask([3])
            assert combined == first.full_mask

    def test_grown_table_stays_compatible_with_its_snapshot(self):
        with sanitizer():
            snapshot = VertexTable(PAIRS[:2])
            grown = VertexTable(PAIRS[:2])
            mask = snapshot.encode_mask(SIMPLEX)
            grown.add(Simplex([(3, "z")]).vertices[0])
            assert grown.decode_mask(mask) == SIMPLEX
