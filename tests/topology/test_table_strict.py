"""VertexTable strict-mode error paths and pickling flavour."""

import pickle

import pytest

from repro.errors import ChromaticityError, ReproError
from repro.topology import Simplex, Vertex, VertexTable

PAIRS = ((1, "x"), (2, "y"), (3, "z"))


class TestStrictEncoding:
    def test_encode_mask_raises_on_unknown_vertex(self):
        table = VertexTable(PAIRS[:2])
        stranger = Simplex([(1, "x"), (3, "z")])
        with pytest.raises(ChromaticityError, match="not interned"):
            table.encode_mask(stranger)

    def test_encode_mask_does_not_intern_on_failure(self):
        table = VertexTable(PAIRS[:2])
        before = table.pairs
        with pytest.raises(ChromaticityError):
            table.encode_mask(Simplex([(3, "z")]))
        assert table.pairs == before

    def test_encode_mask_interning_grows_instead(self):
        table = VertexTable(PAIRS[:2])
        mask = table.encode_mask_interning(Simplex([(1, "x"), (3, "z")]))
        assert len(table) == 3
        assert table.decode_mask(mask) == Simplex([(1, "x"), (3, "z")])

    def test_frozen_table_refuses_growth(self):
        table = VertexTable.interned(PAIRS)
        with pytest.raises(ReproError, match="frozen"):
            table.encode_mask_interning(Simplex([(4, "w")]))


class TestDecodeRangeChecks:
    def test_decode_mask_rejects_non_positive_masks(self):
        table = VertexTable(PAIRS)
        with pytest.raises(ChromaticityError, match="positive"):
            table.decode_mask(0)
        with pytest.raises(ChromaticityError, match="positive"):
            table.decode_mask(-1)

    def test_decode_mask_rejects_out_of_range_bits(self):
        table = VertexTable(PAIRS)
        with pytest.raises(ChromaticityError, match="exceeds"):
            table.decode_mask(1 << len(table))

    def test_trusted_decode_agrees_with_checked_on_valid_masks(self):
        table = VertexTable(PAIRS)
        for mask in range(1, 1 << len(table)):
            assert table.decode_mask_trusted(mask) == table.decode_mask(
                mask
            )

    def test_trusted_decode_skips_the_range_check(self):
        # The "trusted" contract: callers guarantee in-range masks, so
        # the method indexes straight into the vertex list.
        table = VertexTable(PAIRS)
        with pytest.raises(IndexError):
            table.decode_mask_trusted(1 << len(table))


class TestPicklingFlavour:
    def test_interned_table_round_trips_interned(self):
        table = VertexTable.interned(PAIRS)
        restored = pickle.loads(pickle.dumps(table))
        assert restored.is_interned
        assert restored.pairs == table.pairs
        # Rejoins the weak registry: same object as a fresh intern.
        assert restored is VertexTable.interned(PAIRS)

    def test_growable_table_round_trips_growable(self):
        table = VertexTable(PAIRS)
        restored = pickle.loads(pickle.dumps(table))
        assert not restored.is_interned
        assert restored.pairs == table.pairs
        restored.add(Vertex(4, "w"))
        assert len(restored) == 4

    def test_sortedness_survives_the_round_trip(self):
        sorted_table = VertexTable.interned(PAIRS)
        shuffled = VertexTable(tuple(reversed(PAIRS)))
        assert sorted_table.is_sorted
        assert not shuffled.is_sorted
        assert pickle.loads(pickle.dumps(sorted_table)).is_sorted
        assert not pickle.loads(pickle.dumps(shuffled)).is_sorted

    def test_table_ids_are_process_local_not_pickled(self):
        table = VertexTable(PAIRS)
        restored = pickle.loads(pickle.dumps(table))
        assert restored.table_id != table.table_id
