"""Bitmask core vs object-set reference on randomized complexes.

Every property here pits a mask-native :class:`SimplicialComplex`
operation against its retained seed implementation from
:mod:`repro.topology.reference` on hypothesis-generated chromatic
complexes — the same parity contract audit rule AUD013 enforces on live
experiment targets, but over a much wilder input distribution.  A second
group of tests pins the lazy-materialization contract of wire-born
complexes: queries must be answerable without rebuilding ``Simplex``
objects.
"""

from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

from repro.topology import (
    Simplex,
    SimplicialComplex,
    Vertex,
    decode_complex,
    encode_complex,
)
from repro.topology import reference

colors = st.integers(min_value=1, max_value=5)
values = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.fractions(
        min_value=Fraction(0), max_value=Fraction(1), max_denominator=8
    ),
    st.text(alphabet="abc", min_size=0, max_size=2),
)


@st.composite
def simplices(draw, max_colors=4):
    pool = draw(
        st.lists(colors, min_size=1, max_size=max_colors, unique=True)
    )
    return Simplex((c, draw(values)) for c in pool)


@st.composite
def families(draw, max_size=6):
    return draw(st.lists(simplices(), min_size=1, max_size=max_size))


class TestPruningParity:
    @given(families())
    def test_init_prunes_like_the_reference(self, family):
        assert SimplicialComplex(family).facets == (
            reference.prune_reference(family)
        )

    @given(families())
    def test_pruning_all_faces_reproduces_the_facets(self, family):
        complex_ = SimplicialComplex(family)
        candidates = [
            face for facet in complex_.facets for face in facet.faces()
        ]
        assert SimplicialComplex(candidates) == complex_


class TestQueryParity:
    @given(families())
    def test_contains_present_faces(self, family):
        complex_ = SimplicialComplex(family)
        for face in reference.faces_reference(complex_.facets):
            assert face in complex_

    @given(families(), simplices())
    def test_contains_arbitrary_probe(self, family, probe):
        complex_ = SimplicialComplex(family)
        assert (probe in complex_) == reference.contains_reference(
            complex_.facets, probe
        )

    @given(families())
    def test_simplices_and_len(self, family):
        complex_ = SimplicialComplex(family)
        faces = reference.faces_reference(complex_.facets)
        assert complex_.simplices == faces
        assert len(complex_) == len(faces)

    @given(families(), st.sets(colors, max_size=3))
    def test_proj(self, family, keep):
        complex_ = SimplicialComplex(family)
        assert complex_.proj(keep).facets == reference.proj_reference(
            complex_.facets, keep
        )

    @given(families())
    def test_star_of_every_vertex(self, family):
        complex_ = SimplicialComplex(family)
        for vertex in complex_.vertices:
            assert complex_.star(vertex).facets == (
                reference.star_reference(complex_.facets, vertex)
            )

    @given(families())
    def test_star_of_a_foreign_vertex_is_empty(self, family):
        complex_ = SimplicialComplex(family)
        foreign = Vertex(1, ("bitmask-core", "absent"))
        assert complex_.star(foreign).is_empty()

    @given(families(), st.integers(min_value=-1, max_value=4))
    def test_skeleton(self, family, k):
        complex_ = SimplicialComplex(family)
        assert complex_.skeleton(k).facets == (
            reference.skeleton_reference(complex_.facets, k)
        )

    @given(families(), families())
    def test_union(self, left, right):
        a, b = SimplicialComplex(left), SimplicialComplex(right)
        assert a.union(b).facets == reference.union_reference(
            a.facets, b.facets
        )

    @given(families(), families())
    def test_intersection(self, left, right):
        a, b = SimplicialComplex(left), SimplicialComplex(right)
        assert a.intersection(b).facets == (
            reference.intersection_reference(a.facets, b.facets)
        )

    @given(families())
    def test_f_vector(self, family):
        complex_ = SimplicialComplex(family)
        assert complex_.f_vector() == reference.f_vector_reference(
            complex_.facets
        )


class TestLazyMaterialization:
    """Wire-born complexes answer queries without rebuilding facets."""

    @given(families())
    def test_wire_born_complex_defers_facet_objects(self, family):
        original = SimplicialComplex(family)
        reborn = decode_complex(encode_complex(original))
        assert reborn._facets is None  # not materialized at decode time
        # Mask-level queries must not force materialization …
        assert reborn.facet_count == original.facet_count
        assert len(reborn) == len(original)
        assert reborn.dim == original.dim
        assert reborn == original
        assert hash(reborn) == hash(original)
        assert reborn._facets is None
        # … while the facets property materializes on demand.
        assert reborn.facets == original.facets

    @given(families(), families())
    def test_mask_level_operations_stay_lazy(self, left, right):
        a = decode_complex(
            encode_complex(SimplicialComplex(left))
        )
        b = decode_complex(
            encode_complex(SimplicialComplex(right))
        )
        merged = a.union(b)
        projected = a.proj(sorted(a.ids)[:1])
        assert a._facets is None and b._facets is None
        assert merged._facets is None or merged.is_empty()
        assert projected._facets is None or projected.is_empty()

    @given(families())
    def test_reencoding_uses_the_existing_index(self, family):
        original = SimplicialComplex(family)
        wire = encode_complex(original)
        reborn = decode_complex(wire)
        assert encode_complex(reborn) == wire
        assert reborn._facets is None  # encoding is a pure index read

    @given(families())
    def test_equal_complexes_share_one_interned_table(self, family):
        first = SimplicialComplex(family)
        second = SimplicialComplex(list(first.facets))
        assert first._ensure_index()[0] is second._ensure_index()[0]
        assert first._ensure_index()[1] == second._ensure_index()[1]
