"""Tests for the cache-stats report."""

from repro.analysis import CacheStatsRow, cache_stats_rows, render_cache_report
from repro.instrumentation import counter


class TestRows:
    def test_cells_show_hit_rate(self):
        row = CacheStatsRow("sample", 3, 1)
        assert row.calls == 4
        assert row.cells() == ("sample", "3", "1", "75.0%")

    def test_zero_calls_renders_na(self):
        assert CacheStatsRow("idle", 0, 0).cells()[-1] == "n/a"

    def test_pure_construction_counter_renders(self):
        # A cache that only ever builds (0 hits) is still a valid row.
        assert CacheStatsRow("cold", 0, 7).cells() == (
            "cold", "0", "7", "0.0%"
        )

    def test_rows_sorted_by_name(self):
        rows = cache_stats_rows({"b": (1, 0), "a": (0, 1)})
        assert [row.cache for row in rows] == ["a", "b"]


class TestReport:
    def test_explicit_stats(self):
        text = render_cache_report({"one-round": (9, 1)}, title="T")
        assert "T" in text
        assert "one-round" in text
        assert "90.0%" in text

    def test_defaults_to_registered_counters(self):
        sample = counter("test-cache-report.lifetime")
        sample.hit()
        text = render_cache_report()
        assert "test-cache-report.lifetime" in text

    def test_empty_stats_render_cleanly(self):
        # No counter group at all (telemetry never enabled, no cache
        # touched): the table must render headers-only, not raise.
        text = render_cache_report({}, title="empty")
        assert "empty" in text
        assert "hit rate" in text
        assert "no cache activity recorded" in text

    def test_untouched_group_renders_as_zero(self):
        rows = cache_stats_rows({"idle-group": (0, 0)})
        assert len(rows) == 1
        assert rows[0].cells() == ("idle-group", "0", "0", "n/a")

    def test_fresh_registry_renders(self):
        # Same empty-path guarantee through the registry default.
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        text = render_cache_report(registry.cache_snapshot())
        assert "no cache activity recorded" in text
