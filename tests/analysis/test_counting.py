"""Unit tests for census utilities."""


from repro.analysis import compare_models, model_census, per_color_census
from repro.analysis.counting import ComplexCensus
from repro.topology import SimplicialComplex


class TestComplexCensus:
    def test_of_subdivision(self, iis, triangle):
        census = model_census(iis, triangle)
        assert census.facets == 13
        assert census.vertices == 12
        assert census.f_vector == (12, 24, 13)
        assert census.dim == 2
        assert census.pure
        assert census.euler_characteristic == 1  # subdivided disk

    def test_of_simplex(self, triangle):
        census = ComplexCensus.of(SimplicialComplex.from_simplex(triangle))
        assert census.facets == 1
        assert census.vertices == 3

    def test_multi_round(self, iis, edge):
        census = model_census(iis, edge, rounds=2)
        assert census.facets == 9
        assert census.dim == 1


class TestPerColor:
    def test_subdivision_four_views_per_color(self, iis, triangle):
        census = per_color_census(
            iis.protocol_complex(SimplicialComplex.from_simplex(triangle), 1)
        )
        assert census == {1: 4, 2: 4, 3: 4}

    def test_tas_seven_views_per_color(self, iis_tas, triangle):
        census = per_color_census(
            iis_tas.protocol_complex(
                SimplicialComplex.from_simplex(triangle), 1
            )
        )
        assert census == {1: 7, 2: 7, 3: 7}


class TestCompareModels:
    def test_iis_within_snapshot(self, iis, snapshot_model, triangle):
        report = compare_models(iis, snapshot_model, triangle)
        assert report["contained"]
        assert report["strict"]
        assert report["smaller_facets"] == 13
        assert report["larger_facets"] == 19
        assert report["extra_facets"] == 6

    def test_snapshot_within_collect(
        self, snapshot_model, collect_model, triangle
    ):
        report = compare_models(snapshot_model, collect_model, triangle)
        assert report["strict"]
        assert report["larger_facets"] == 25

    def test_reverse_not_contained(self, iis, collect_model, triangle):
        report = compare_models(collect_model, iis, triangle)
        assert not report["contained"]
