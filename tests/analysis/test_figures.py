"""The paper's figures, asserted structurally."""


from repro.analysis import (
    figure4_complex_and_map,
    figure5_complex,
    figure6_simplices,
    figure7_complex,
    figure8_census,
)
from repro.objects import AugmentedModel, TestAndSetBox
from repro.topology import Simplex


class TestFigure4:
    def test_two_process_consensus_with_tas_solvable(self):
        protocol, decision = figure4_complex_and_map()
        assert decision is not None
        assert decision.rounds == 1

    def test_protocol_vertex_count(self):
        protocol, _ = figure4_complex_and_map()
        # Per input edge: solo views only with win=1; both-views with 0/1.
        assert len(protocol.vertices) == 20


class TestFigure5:
    def test_counts(self):
        data = figure5_complex()
        assert data["per_color"] == {1: 7, 2: 7, 3: 7}
        assert data["full_participation_facets"] == 18
        assert len(data["complex"].vertices) == 21

    def test_solo_always_wins(self):
        data = figure5_complex()
        assert set(data["solo_outcomes"].values()) == {1}

    def test_non_solo_views_duplicated(self):
        data = figure5_complex()
        assert all(data["non_solo_views_duplicated"].values())


class TestFigure6:
    def test_rho_simplices_exist_in_complex(self):
        tau_values = {1: 0, 2: 1, 3: 0}
        rho_ijk, rho_jik = figure6_simplices(tau_values, 1, 2, 3)
        model = AugmentedModel(TestAndSetBox())
        complex_ = model.one_round_complex(
            Simplex(tau_values.items())
        )
        assert rho_ijk in complex_
        assert rho_jik in complex_

    def test_rho_structure(self):
        rho_ijk, rho_jik = figure6_simplices({1: 0, 2: 1, 3: 0}, 1, 2, 3)
        # In ρ_{i,j,k}, process i wins; in ρ_{j,i,k}, process j wins.
        assert rho_ijk.value_of(1)[0] == 1
        assert rho_ijk.value_of(2)[0] == 0
        assert rho_jik.value_of(2)[0] == 1
        assert rho_jik.value_of(1)[0] == 0
        # Both share process k's vertex (sees everything, loses).
        assert rho_ijk.vertex_of(3) == rho_jik.vertex_of(3)


class TestFigure7:
    def test_opposite_solo_vertices_removed(self):
        data = figure7_complex()
        assert all(data["opposite_solo_removed"].values())

    def test_facets_split_by_agreed_bit(self):
        data = figure7_complex()
        per_bit = data["facets_per_agreed_bit"]
        # Bit 0 only when the black process (calling 0) is in the first
        # block: 6 of the 13 schedules; bit 1 for the remaining 10 (with
        # mixed first blocks contributing both).
        assert per_bit == {0: 6, 1: 10}

    def test_uniform_calls_give_single_copy(self):
        data = figure7_complex(call_bits={1: 1, 2: 1, 3: 1})
        assert data["facets_per_agreed_bit"] == {0: 0, 1: 13}


class TestFigure8:
    def test_census(self):
        data = figure8_census()
        assert data["immediate_snapshot"].facets == 13
        assert data["snapshot"].facets == 19
        assert data["collect"].facets == 25
        assert data["iis_strictly_inside_snapshot"]
        assert data["snapshot_strictly_inside_collect"]
        assert data["snapshot_only_facets"] == 6
        assert data["collect_only_facets"] == 6

    def test_same_12_vertices_everywhere(self):
        data = figure8_census()
        assert data["immediate_snapshot"].vertices == 12
        assert data["snapshot"].vertices == 12
        assert data["collect"].vertices == 12
