"""Unit tests for complex exports (DOT, facet listings, legends)."""

import pytest

from repro.analysis import facet_listing, to_dot, vertex_legend
from repro.objects import AugmentedModel, TestAndSetBox
from repro.topology import Simplex, SimplicialComplex


@pytest.fixture
def edge_complex(iis, edge):
    return iis.one_round_complex(edge)


class TestVertexLegend:
    def test_labels_are_unique_and_stable(self, edge_complex):
        first = vertex_legend(edge_complex)
        second = vertex_legend(edge_complex)
        assert first == second
        assert len(set(first)) == len(edge_complex.vertices)

    def test_labels_encode_color(self, edge_complex):
        legend = vertex_legend(edge_complex)
        for label, vertex in legend.items():
            assert label.startswith(f"p{vertex.color}_")


class TestToDot:
    def test_basic_structure(self, edge_complex):
        dot = to_dot(edge_complex, title="one-round")
        assert dot.startswith('graph "one-round" {')
        assert dot.rstrip().endswith("}")
        # 4 vertices, 5 edges (3 facets of dim 1 share vertices).
        assert dot.count(" -- ") == 3

    def test_deterministic(self, edge_complex):
        assert to_dot(edge_complex) == to_dot(edge_complex)

    def test_subdivision_edge_count(self, iis, triangle):
        complex_ = iis.one_round_complex(triangle)
        dot = to_dot(complex_)
        # The chromatic subdivision has 24 edges (f-vector (12, 24, 13)).
        assert dot.count(" -- ") == 24

    def test_augmented_labels_mention_box_output(self, triangle):
        model = AugmentedModel(TestAndSetBox())
        dot = to_dot(model.one_round_complex(triangle))
        assert "b=1" in dot and "b=0" in dot

    def test_colors_cycle_for_many_processes(self):
        big = SimplicialComplex.from_simplex(
            Simplex((i, f"x{i}") for i in range(1, 11))
        )
        dot = to_dot(big)
        assert dot.count("fillcolor") == 10


class TestFacetListing:
    def test_header_counts(self, edge_complex):
        text = facet_listing(edge_complex)
        assert text.splitlines()[0] == "# 3 facets, 4 vertices, dim 1"

    def test_one_line_per_facet(self, iis, triangle):
        complex_ = iis.one_round_complex(triangle)
        text = facet_listing(complex_)
        assert len(text.splitlines()) == 1 + 13

    def test_deterministic(self, edge_complex):
        assert facet_listing(edge_complex) == facet_listing(edge_complex)

    def test_views_rendered_compactly(self, edge_complex):
        text = facet_listing(edge_complex)
        assert "1:{1,2}" in text
        assert "2:{2}" in text
