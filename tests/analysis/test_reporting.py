"""Unit tests for experiment table rendering."""

from repro.analysis import ExperimentRow, render_table


class TestExperimentRow:
    def test_cells_ok(self):
        row = ExperimentRow("n=3, ε=1/4", "2 rounds", "2 rounds", True)
        assert row.cells()[-1] == "ok"

    def test_cells_mismatch(self):
        row = ExperimentRow("n=3", "2", "3", False)
        assert row.cells()[-1] == "MISMATCH"


class TestRenderTable:
    def test_contains_title_and_rows(self):
        rows = [
            ExperimentRow("a", "1", "1", True),
            ExperimentRow("b", "2", "3", False),
        ]
        text = render_table("My table", rows)
        assert "My table" in text
        assert "MISMATCH" in text
        assert text.count("\n") >= 5

    def test_column_alignment(self):
        rows = [
            ExperimentRow("long-instance-name", "1", "1", True),
            ExperimentRow("x", "2", "2", True),
        ]
        lines = render_table("t", rows).splitlines()
        data_lines = lines[4:]
        # The 'paper' column starts at the same offset on every row.
        offsets = {line.index("1") for line in data_lines[:1]}
        assert len(offsets) == 1

    def test_custom_headers(self):
        text = render_table(
            "t",
            [ExperimentRow("i", "p", "m", True)],
            headers=("инстанс", "бумага", "изм.", "вердикт"),
        )
        assert "инстанс" in text

    def test_empty_rows(self):
        text = render_table("empty", [])
        assert "empty" in text
