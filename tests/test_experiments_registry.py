"""Tests for the experiments registry (E1–E23)."""

import pytest

from repro.errors import ExperimentError, ReproError
from repro.experiments import EXPERIMENTS, get_experiment, run_experiment


class TestRegistryStructure:
    def test_twenty_three_experiments(self):
        assert len(EXPERIMENTS) == 23
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 24)}

    def test_entries_are_complete(self):
        for identifier, entry in EXPERIMENTS.items():
            assert entry.identifier == identifier
            assert entry.artifact
            assert entry.summary
            assert callable(entry.runner)

    def test_lookup_case_insensitive(self):
        assert get_experiment("e9").identifier == "E9"

    def test_unknown_id_raises(self):
        with pytest.raises(ReproError):
            get_experiment("E99")

    def test_run_experiment_wraps_failures(self, monkeypatch):
        # A runner blowing up must surface as ExperimentError carrying
        # the experiment id and the original cause, chained for debugging.
        def boom():
            raise ValueError("synthetic failure")

        monkeypatch.setitem(
            EXPERIMENTS,
            "E1",
            EXPERIMENTS["E1"].__class__(
                "E1", EXPERIMENTS["E1"].artifact,
                EXPERIMENTS["E1"].summary, boom,
            ),
        )
        with pytest.raises(ExperimentError) as excinfo:
            run_experiment("E1")
        assert excinfo.value.experiment_id == "E1"
        assert "synthetic failure" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_ids_match_design_doc(self):
        # DESIGN.md §4 must list exactly the registered experiments.
        import pathlib

        design = pathlib.Path(__file__).parents[1] / "DESIGN.md"
        text = design.read_text(encoding="utf-8")
        for identifier in EXPERIMENTS:
            assert f"| {identifier} |" in text, (
                f"{identifier} missing from DESIGN.md's experiment index"
            )


class TestRunners:
    """Run the fast experiments end to end through the registry."""

    def test_e1_models(self):
        data = run_experiment("E1")
        assert data["immediate_snapshot"].facets == 13

    def test_e3_corollary1(self):
        data = run_experiment("E3")
        assert data[2]["unsolvable"] and data[3]["unsolvable"]

    def test_e5_fig5(self):
        data = run_experiment("E5")
        assert data["per_color"] == {1: 7, 2: 7, 3: 7}

    def test_e11_fig7(self):
        data = run_experiment("E11")
        assert data["mixed"]["facets_per_agreed_bit"] == {0: 6, 1: 10}
        assert data["uniform"]["facets_per_agreed_bit"] == {0: 0, 1: 13}

    def test_e14_claim1(self):
        data = run_experiment("E14")
        assert not data["strict_2"]
        assert data["liberal_2"]

    def test_e19_scaling(self):
        data = run_experiment("E19")
        assert data["subdivision"] == {1: 1, 2: 3, 3: 13, 4: 75}
        assert data["rounds"] == {0: 1, 1: 13, 2: 169}

    def test_e2_closure_machinery(self):
        data = run_experiment("E2")
        assert data["tau_in_closure"] and not data["tau_out_closure"]

    def test_e17_kset(self):
        data = run_experiment("E17")
        assert data["closure_grows"]

    def test_e22_cache_effectiveness(self):
        data = run_experiment("E22")
        assert data["facets"] == 169
        assert data["f_vector"] == (99, 267, 169)
        # The acceptance bar: ≥ 5× fewer one-round materializations than
        # the one-per-request pre-caching baseline.
        assert data["requests"] >= 5 * data["materializations"]


class TestParameterizedRunners:
    """The heavier experiment functions, exercised on reduced instances."""

    def test_claim2_small_grid(self):
        from fractions import Fraction

        from repro.experiments import reproduce_claim2

        data = reproduce_claim2(m=3, eps=Fraction(1, 3))
        assert data["mismatches"] == 0
        assert data["checked"] > 0

    def test_runtime_vs_matrices_small_sample(self):
        from repro.experiments import reproduce_runtime_vs_matrices

        report = reproduce_runtime_vs_matrices(samples=50)
        assert all(entry["sound"] for entry in report.values())

    def test_upper_bounds_few_seeds(self):
        from repro.experiments import reproduce_upper_bounds

        cases = reproduce_upper_bounds(seeds=range(3))
        assert len(cases) == 5
        assert all(ok for _, _, _, ok in cases)

    def test_noniterated_small_sample(self):
        from repro.experiments import reproduce_noniterated

        data = reproduce_noniterated(samples=120)
        assert data["filtered_async"]["violations"] == 0
        assert data["plain_async"]["violations"] > 0

    @pytest.mark.slow
    def test_solver_ablation_shape(self):
        from repro.experiments import reproduce_solver_ablation

        data = reproduce_solver_ablation()
        assert data["full"]["refuted"]
        assert data["full"]["nodes"] == 0
        assert data["none"]["exceeded"] or data["none"]["nodes"] > 0
