"""Integration: the closure engine on k-set agreement (E17).

The conclusion of the paper suggests applying the speedup theorem beyond
consensus and approximate agreement; k-set agreement is the natural
candidate.  These tests exercise the machinery there: 2-set agreement among
3 processes is wait-free solvable-in-zero-rounds? No — but it is famously
unsolvable (BG/SZ/HS); our engine can at least certify small-round
unsolvability and compute closures, and 2-set agreement among 2 processes
is trivial.
"""


from repro.core import ClosureComputer, is_solvable
from repro.tasks import set_agreement_task
from repro.tasks.inputs import input_simplex


class TestKSetWithClosureEngine:
    def test_trivial_instance_zero_rounds(self, iis):
        # k = n: every process may keep its input.
        task = set_agreement_task([1, 2], [0, 1], 2)
        assert is_solvable(task, iis, 0)

    def test_2set_3proc_not_zero_rounds(self, iis):
        task = set_agreement_task([1, 2, 3], ["a", "b", "c"], 2)
        assert not is_solvable(task, iis, 0)

    def test_2set_3proc_not_one_round(self, iis):
        # The k-set agreement impossibility, certified by brute force at
        # t = 1 (full impossibility needs Sperner-type arguments the
        # closure alone does not give).
        task = set_agreement_task([1, 2, 3], ["a", "b", "c"], 2)
        rainbow = input_simplex({1: "a", 2: "b", 3: "c"})
        simplices = [rainbow] + list(rainbow.proper_faces())
        assert not is_solvable(task, iis, 1, input_simplices=simplices)

    def test_closure_strictly_extends_delta(self, iis):
        # Unlike consensus, 2-set agreement is NOT a fixed point: its
        # closure gains output sets (e.g. three distinct values that a
        # one-round convergence step can fix) — which is consistent with
        # the task being "easier" than consensus.
        task = set_agreement_task([1, 2, 3], ["a", "b", "c"], 2)
        computer = ClosureComputer(task, iis)
        sigma = input_simplex({1: "a", 2: "b", 3: "c"})
        closed = computer.delta_prime(sigma)
        assert task.delta(sigma).simplices < closed.simplices

    def test_rainbow_output_still_excluded_from_closure(self, iis):
        # But not everything enters the closure: keeping all three
        # distinct values must remain illegal... unless a one-round map
        # can always merge one pair.  Record the engine's verdict; the
        # interesting fact is it is decidable either way.
        task = set_agreement_task([1, 2, 3], ["a", "b", "c"], 2)
        computer = ClosureComputer(task, iis)
        sigma = input_simplex({1: "a", 2: "b", 3: "c"})
        verdict = computer.contains(sigma, sigma)
        assert isinstance(verdict, bool)

    def test_closure_respects_validity(self, iis):
        task = set_agreement_task([1, 2, 3], ["a", "b", "c"], 2)
        computer = ClosureComputer(task, iis)
        sigma = input_simplex({1: "a", 2: "a", 3: "b"})
        for tau in computer.legal_outputs(sigma):
            assert {v.value for v in tau.vertices} <= {"a", "b"}
