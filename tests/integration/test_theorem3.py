"""Integration: Theorem 3 / Claim 4 — test&set does not accelerate
approximate agreement for n ≥ 3 (E10).
"""

from fractions import Fraction

import pytest

from repro.core import (
    ClosureComputer,
    aa_lower_bound_iis,
    aa_lower_bound_iis_tas,
    is_solvable,
)
from repro.tasks import (
    approximate_agreement_task,
    liberal_approximate_agreement_task,
)
from repro.tasks.inputs import input_simplex


def F(num, den=1):
    return Fraction(num, den)


class TestClaim4:
    @pytest.mark.slow
    def test_closure_with_tas_is_still_2eps_on_wide_windows(self, iis_tas):
        m, eps = 4, F(1, 4)
        task = liberal_approximate_agreement_task([1, 2, 3], eps, m)
        target = liberal_approximate_agreement_task([1, 2, 3], 2 * eps, m)
        computer = ClosureComputer(task, iis_tas)
        # Distinct windows only (the cache collapses the rest anyway):
        # wide windows are where a hypothetical speedup would show.
        seen_windows = set()
        for sigma in task.input_complex.simplices_of_dim(2):
            values = sorted(v.value for v in sigma.vertices)
            window = (values[0], values[-1])
            if window in seen_windows or window[1] - window[0] < F(1, 2):
                continue
            seen_windows.add(window)
            assert (
                computer.delta_prime(sigma).simplices
                == target.delta(sigma).simplices
            ), f"Claim 4 fails at {sigma.as_mapping()}"

    def test_two_proc_faces_are_liberal_hence_unconstrained(self, iis_tas):
        m, eps = 4, F(1, 4)
        task = liberal_approximate_agreement_task([1, 2, 3], eps, m)
        computer = ClosureComputer(task, iis_tas)
        sigma = input_simplex({1: F(0), 2: F(1)})
        # Liberal: any in-range pair is legal, closure agrees.
        assert computer.contains(sigma, input_simplex({1: F(0), 2: F(1)}))


class TestTheorem3:
    def test_bound_equals_plain_iis_for_n_ge_3(self):
        for eps in (F(1, 2), F(1, 4), F(1, 8), F(1, 32)):
            assert aa_lower_bound_iis_tas(3, eps) == aa_lower_bound_iis(
                3, eps
            )
            assert aa_lower_bound_iis_tas(5, eps) == aa_lower_bound_iis(
                5, eps
            )

    def test_bound_binds_one_round_down_with_tas(self, iis_tas):
        # ε = 1/4, n = 3, with test&set: still not solvable in 1 round.
        task = approximate_agreement_task([1, 2, 3], F(1, 4), 4)
        wide = [
            sigma
            for sigma in task.input_complex
            if sigma.dim == 2
            and max(v.value for v in sigma.vertices)
            - min(v.value for v in sigma.vertices)
            == 1
        ]
        wide += [s for sigma in wide for s in sigma.proper_faces()]
        assert not is_solvable(task, iis_tas, 1, input_simplices=wide)

    def test_contrast_two_processes_accelerated(self, iis_tas):
        # The n = 2 contrast: with test&set even exact-looking precision is
        # one round, because 2-process consensus is.
        task = approximate_agreement_task([1, 2], F(1, 4), 4)
        assert is_solvable(task, iis_tas, 1)
        assert aa_lower_bound_iis_tas(2, F(1, 4)) == 1

    def test_half_eps_solvable_in_one_round_n3_with_or_without(self, iis, iis_tas):
        # At ε = 1/2 one round suffices in both models: the object brings
        # nothing at the top of the recursion either.
        task = approximate_agreement_task([1, 2, 3], F(1, 2), 2)
        assert is_solvable(task, iis, 1)
        assert is_solvable(task, iis_tas, 1)
