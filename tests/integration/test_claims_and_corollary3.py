"""Integration: Claims 1–3 and Corollary 3 (E7, E8, E9, E14).

The closure of ε-approximate agreement is (3ε)-AA for two processes and
(2ε)-AA (liberal) for three — the two identities from which Corollary 3's
⌈log₃ 1/ε⌉ and ⌈log₂ 1/ε⌉ lower bounds follow.  Tightness comes from the
algorithms, whose decision maps we extract and check combinatorially.
"""

from fractions import Fraction

import pytest

from repro.algorithms import HalvingAA, TwoProcessThirdsAA
from repro.core import (
    ClosureComputer,
    aa_lower_bound_iis,
    aa_upper_bound_iis,
    is_solvable,
)
from repro.models import ProtocolOperator
from repro.runtime import extract_decision_map
from repro.tasks import (
    approximate_agreement_task,
    liberal_approximate_agreement_task,
)
from repro.tasks.inputs import input_simplex


def F(num, den=1):
    return Fraction(num, den)


class TestClaim1:
    @pytest.mark.parametrize("eps, m", [(F(1, 2), 2), (F(3, 4), 4)])
    def test_aa_not_zero_round_solvable(self, iis, eps, m):
        task = approximate_agreement_task([1, 2], eps, m)
        assert not is_solvable(task, iis, 0)

    def test_liberal_aa_not_zero_round_solvable_three_procs(self, iis):
        task = liberal_approximate_agreement_task([1, 2, 3], F(1, 2), 2)
        assert not is_solvable(task, iis, 0)

    def test_liberal_aa_zero_round_gap_for_two_procs(self, iis):
        # For exactly two processes, the liberal task IS 0-round solvable
        # (outputs need only stay in range) — the reason Theorem 4 loses
        # an additive 1.
        task = liberal_approximate_agreement_task([1, 2], F(1, 2), 2)
        assert is_solvable(task, iis, 0)


class TestClaim2:
    def test_closure_is_3eps_full_sweep(self, iis):
        m, eps = 6, F(1, 6)
        task = approximate_agreement_task([1, 2], eps, m)
        target = approximate_agreement_task([1, 2], 3 * eps, m)
        computer = ClosureComputer(task, iis)
        for sigma in task.input_complex:
            assert (
                computer.delta_prime(sigma).simplices
                == target.delta(sigma).simplices
            ), f"Claim 2 fails at {sigma.as_mapping()}"

    def test_eq2_witness_map(self, iis):
        # The constructive direction: for τ with gap exactly 3ε the local
        # task is solvable — Eq. (2) is the witness, and the engine finds
        # one.
        m, eps = 6, F(1, 6)
        task = approximate_agreement_task([1, 2], eps, m)
        computer = ClosureComputer(task, iis)
        sigma = input_simplex({1: F(0), 2: F(1)})
        assert computer.contains(
            sigma, input_simplex({1: F(1, 6), 2: F(4, 6)})
        )
        assert not computer.contains(
            sigma, input_simplex({1: F(0), 2: F(4, 6)})
        )


class TestClaim3:
    @pytest.mark.slow
    def test_closure_is_liberal_2eps_representative_sweep(self, iis):
        m, eps = 4, F(1, 4)
        task = liberal_approximate_agreement_task([1, 2, 3], eps, m)
        target = liberal_approximate_agreement_task([1, 2, 3], 2 * eps, m)
        computer = ClosureComputer(task, iis)
        # All 2-dimensional windows (the cache collapses translates).
        for sigma in task.input_complex.simplices_of_dim(2):
            assert (
                computer.delta_prime(sigma).simplices
                == target.delta(sigma).simplices
            ), f"Claim 3 fails at {sigma.as_mapping()}"

    def test_closure_on_faces_matches_liberal_semantics(self, iis):
        m, eps = 4, F(1, 4)
        task = liberal_approximate_agreement_task([1, 2, 3], eps, m)
        target = liberal_approximate_agreement_task([1, 2, 3], 2 * eps, m)
        computer = ClosureComputer(task, iis)
        for sigma in [
            input_simplex({1: F(0), 2: F(1)}),
            input_simplex({2: F(1, 4), 3: F(3, 4)}),
            input_simplex({3: F(1, 2)}),
        ]:
            assert (
                computer.delta_prime(sigma).simplices
                == target.delta(sigma).simplices
            )

    def test_eq3_map_realizes_the_closure(self, iis):
        # Eq. (3) applied once must solve ε-AA from inputs ≤ 2ε apart:
        # extract the 1-round halving map and check it on a 2ε window.
        eps = F(1, 4)
        algorithm = HalvingAA(eps, rounds=1)
        task = approximate_agreement_task([1, 2, 3], eps, 4)
        sub_inputs = [
            sigma
            for sigma in task.input_complex
            if all(F(1, 4) <= v.value <= F(3, 4) for v in sigma.vertices)
        ]
        from repro.topology import SimplicialComplex

        sub_complex = SimplicialComplex(
            [s for s in sub_inputs if s.dim == 2]
        )
        decision = extract_decision_map(algorithm, iis, sub_complex)
        operator = ProtocolOperator(iis)
        for sigma in sub_complex:
            allowed = task.delta(sigma).simplices
            for facet in operator.of_simplex(sigma, 1).facets:
                assert decision.output_simplex(facet) in allowed


class TestCorollary3:
    @pytest.mark.parametrize(
        "n, eps, expected",
        [
            (2, F(1, 3), 1),
            (2, F(1, 9), 2),
            (2, F(1, 4), 2),
            (3, F(1, 2), 1),
            (3, F(1, 4), 2),
            (3, F(1, 8), 3),
        ],
    )
    def test_closed_form(self, n, eps, expected):
        assert aa_lower_bound_iis(n, eps) == expected

    def test_tightness_constructive_two_procs(self, iis):
        # The thirds algorithm meets the bound: its extracted map solves
        # ε-AA in exactly ⌈log₃ 1/ε⌉ rounds.
        eps = F(1, 3)
        task = approximate_agreement_task([1, 2], eps, 3)
        algorithm = TwoProcessThirdsAA(eps)
        assert algorithm.rounds == aa_upper_bound_iis(2, eps) == 1
        decision = extract_decision_map(algorithm, iis, task.input_complex)
        operator = ProtocolOperator(iis)
        for sigma in task.input_complex:
            allowed = task.delta(sigma).simplices
            for facet in operator.of_simplex(sigma, 1).facets:
                assert decision.output_simplex(facet) in allowed

    def test_lower_bound_binds_one_round_down(self, iis):
        # ε = 1/4, n = 2: the bound says 2 rounds; 1 round must fail.
        task = approximate_agreement_task([1, 2], F(1, 4), 4)
        assert not is_solvable(task, iis, 1)

    def test_lower_bound_binds_three_procs(self, iis):
        # ε = 1/4, n = 3: 2 rounds needed; 1 round must fail.  Restrict to
        # the wide-window inputs to keep the refutation fast — failure on a
        # restriction refutes the full task too.
        task = approximate_agreement_task([1, 2, 3], F(1, 4), 4)
        wide = [
            sigma
            for sigma in task.input_complex
            if sigma.dim == 2
            and max(v.value for v in sigma.vertices)
            - min(v.value for v in sigma.vertices)
            == 1
        ]
        wide += [s for sigma in wide for s in sigma.proper_faces()]
        assert not is_solvable(task, iis, 1, input_simplices=wide)


class TestTwoRoundTightnessThreeProcs:
    def test_halving_two_rounds_solve_quarter_aa(self, iis):
        # Corollary 3's upper bound for n = 3, ε = 1/4: the extracted
        # 2-round halving map solves the task on representative windows
        # (one σ per distinct (min, max) window; Δ and the protocol are
        # translation-equivariant across windows of equal width).
        from repro.algorithms import HalvingAA
        from repro.models import ProtocolOperator
        from repro.runtime import extract_decision_map
        from repro.topology import SimplicialComplex

        task = approximate_agreement_task([1, 2, 3], F(1, 4), 4)
        algorithm = HalvingAA(F(1, 4))
        assert algorithm.rounds == 2
        seen = set()
        chosen = []
        for sigma in task.input_complex.simplices_of_dim(2):
            values = sorted(v.value for v in sigma.vertices)
            window = (values[0], values[-1], values[1])
            if window in seen:
                continue
            seen.add(window)
            chosen.append(sigma)
        sub = SimplicialComplex(chosen[:12])
        decision = extract_decision_map(algorithm, iis, sub)
        operator = ProtocolOperator(iis)
        for sigma in sub:
            allowed = task.delta(sigma).simplices
            for facet in operator.of_simplex(sigma, 2).facets:
                assert decision.output_simplex(facet) in allowed


class TestClaim3AcrossModels:
    @pytest.mark.slow
    def test_closure_identity_holds_in_weaker_models_too(
        self, snapshot_model, collect_model
    ):
        # The paper proves Claim 3 in IIS (the strongest model, so the
        # lower bound transfers downward a fortiori).  Computing the
        # closure directly in the weaker models shows the identity itself
        # persists: the extra snapshot/collect executions add constraints
        # to the local tasks (forcing Δ' ⊆ Δ'_IIS = 2ε), and Eq. (3)'s
        # witness map only needs comparable-or-self views, so 2ε-sets stay
        # inside.  Hence CL(liberal ε-AA) = liberal 2ε-AA in all three
        # register models.
        m, eps = 4, F(1, 4)
        task = liberal_approximate_agreement_task([1, 2, 3], eps, m)
        target = liberal_approximate_agreement_task([1, 2, 3], 2 * eps, m)
        sigma = input_simplex({1: F(0), 2: F(1, 2), 3: F(1)})
        for model in (snapshot_model, collect_model):
            computer = ClosureComputer(task, model)
            assert (
                computer.delta_prime(sigma).simplices
                == target.delta(sigma).simplices
            ), f"Claim 3 identity fails in {model.name}"

    def test_consensus_fixed_point_in_weaker_models_too(
        self, snapshot_model, collect_model
    ):
        # Corollary 1's engine also runs unchanged in snapshot and collect.
        from repro.core import impossibility_from_fixed_point
        from repro.tasks import binary_consensus_task

        for model in (snapshot_model, collect_model):
            report = impossibility_from_fixed_point(
                binary_consensus_task([1, 2]), model
            )
            assert report.unsolvable, model.name
