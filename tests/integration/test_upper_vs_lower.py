"""Integration: the upper-bound algorithms meet the lower bounds (E9, E15).

For every instance: (paper's lower bound) == (algorithm's round count),
and the algorithm is actually correct at that round count while failing
(somewhere) with one round fewer — the bounds genuinely bind.
"""

from fractions import Fraction

import pytest

from repro.algorithms import (
    BitwiseAA,
    ConsensusViaBinaryConsensus,
    HalvingAA,
    TwoProcessConsensusTAS,
    TwoProcessThirdsAA,
)
from repro.core import aa_lower_bound_iis, aa_lower_bound_iis_tas, ceil_log
from repro.objects import BinaryConsensusBox
from repro.runtime import (
    FixedScheduleAdversary,
    IteratedExecutor,
    all_schedule_sequences,
)


def F(num, den=1):
    return Fraction(num, den)


class TestRoundCountsMatchBounds:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_halving_meets_log2(self, k):
        eps = F(1, 2**k)
        assert HalvingAA(eps).rounds == aa_lower_bound_iis(3, eps) == k

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_thirds_meets_log3(self, k):
        eps = F(1, 3**k)
        assert TwoProcessThirdsAA(eps).rounds == aa_lower_bound_iis(2, eps) == k

    def test_tas_consensus_meets_one_round(self):
        assert TwoProcessConsensusTAS.rounds == aa_lower_bound_iis_tas(
            2, F(1, 100)
        )

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8])
    def test_consensus_bc_meets_log_n(self, n):
        assert ConsensusViaBinaryConsensus(n).rounds == max(1, ceil_log(2, n))

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_bitwise_meets_log2(self, k):
        eps = F(1, 2**k)
        assert BitwiseAA(eps).rounds == ceil_log(2, 1 / eps) == k


class TestBoundsBind:
    def test_halving_with_one_round_fewer_fails_somewhere(self):
        # Run the ε = 1/4 halving algorithm for only 1 round: some
        # schedule must leave two outputs more than ε apart.
        eps = F(1, 4)
        algorithm = HalvingAA(eps, rounds=1)
        inputs = {1: F(0), 2: F(1, 2), 3: F(1)}
        executor = IteratedExecutor()
        violated = False
        for sequence in all_schedule_sequences([1, 2, 3], 1):
            result = executor.run(
                algorithm, inputs, FixedScheduleAdversary(sequence)
            )
            values = list(result.decisions.values())
            if max(values) - min(values) > eps:
                violated = True
                break
        assert violated

    def test_thirds_with_one_round_fewer_fails_somewhere(self):
        eps = F(1, 9)
        algorithm = TwoProcessThirdsAA(eps, rounds=1)
        inputs = {1: F(0), 2: F(1)}
        executor = IteratedExecutor()
        violated = False
        for sequence in all_schedule_sequences([1, 2], 1):
            result = executor.run(
                algorithm, inputs, FixedScheduleAdversary(sequence)
            )
            values = list(result.decisions.values())
            if max(values) - min(values) > eps:
                violated = True
        assert violated

    def test_full_round_counts_suffice_end_to_end(self):
        # One sweep asserting the paper's upper-bound table: (model,
        # algorithm, rounds) all at once, under the synchronous schedule
        # and a solo-heavy one.
        cases = [
            (HalvingAA(F(1, 8)), None, {1: F(0), 2: F(1, 2), 3: F(1)}, F(1, 8)),
            (TwoProcessThirdsAA(F(1, 9)), None, {1: F(0), 2: F(1)}, F(1, 9)),
            (
                BitwiseAA(F(1, 8)),
                BinaryConsensusBox(),
                {1: F(0), 2: F(1, 2), 3: F(1)},
                F(1, 8),
            ),
        ]
        for algorithm, box, inputs, eps in cases:
            executor = IteratedExecutor(box=box)
            result = executor.run(algorithm, inputs)
            values = list(result.decisions.values())
            assert max(values) - min(values) <= eps

    def test_consensus_bc_exact_agreement(self):
        executor = IteratedExecutor(box=BinaryConsensusBox())
        algorithm = ConsensusViaBinaryConsensus(5)
        inputs = {i: f"v{i}" for i in range(1, 6)}
        result = executor.run(algorithm, inputs)
        assert len(set(result.decisions.values())) == 1
