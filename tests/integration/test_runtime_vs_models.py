"""Integration: operational runtime ⟷ combinatorial models (E16).

Multi-round executions of the iterated executor must correspond to facets
of the combinatorial protocol complex, and algorithm decisions observed
operationally must agree with the symbolically extracted decision map.
"""

from fractions import Fraction


from repro.algorithms import HalvingAA
from repro.models import ProtocolOperator
from repro.runtime import (
    FixedScheduleAdversary,
    IteratedExecutor,
    all_schedule_sequences,
    extract_decision_map,
)
from repro.tasks import approximate_agreement_task
from repro.tasks.inputs import input_simplex
from repro.topology import Simplex, Vertex, View


def F(num, den=1):
    return Fraction(num, den)


def nested_views(inputs, sequences):
    """Compute the nested full-information views for a block-schedule run."""
    values = {p: inputs[p] for p in inputs}
    for blocks in sequences:
        views = {}
        prefix = []
        for block in blocks:
            prefix.extend(block)
            snapshot = View((q, values[q]) for q in prefix)
            for p in block:
                views[p] = snapshot
        values = views
    return values


class TestExecutionFacetCorrespondence:
    def test_every_two_round_execution_is_a_protocol_facet(self, iis):
        inputs = {1: F(0), 2: F(1)}
        sigma = input_simplex(inputs)
        operator = ProtocolOperator(iis)
        protocol = operator.of_simplex(sigma, 2)
        for sequence in all_schedule_sequences([1, 2], 2):
            final_views = nested_views(inputs, sequence)
            facet = Simplex(
                Vertex(p, view) for p, view in final_views.items()
            )
            assert facet in protocol

    def test_all_protocol_facets_are_reachable(self, iis):
        inputs = {1: F(0), 2: F(1)}
        sigma = input_simplex(inputs)
        operator = ProtocolOperator(iis)
        protocol = operator.of_simplex(sigma, 2)
        reached = set()
        for sequence in all_schedule_sequences([1, 2], 2):
            final_views = nested_views(inputs, sequence)
            reached.add(
                Simplex(Vertex(p, view) for p, view in final_views.items())
            )
        assert reached == set(protocol.facets)


class TestExecutorVsExtractedMap:
    def test_decisions_agree_everywhere(self, iis):
        eps = F(1, 4)
        task = approximate_agreement_task([1, 2, 3], eps, 4)
        algorithm = HalvingAA(eps)
        inputs = {1: F(0), 2: F(1, 2), 3: F(1)}
        sigma = input_simplex(inputs)
        sub = __import__(
            "repro.topology", fromlist=["SimplicialComplex"]
        ).SimplicialComplex.from_simplex(sigma)
        decision = extract_decision_map(algorithm, iis, sub)
        executor = IteratedExecutor()
        for sequence in all_schedule_sequences([1, 2, 3], algorithm.rounds):
            result = executor.run(
                algorithm, inputs, FixedScheduleAdversary(sequence)
            )
            final_views = nested_views(inputs, sequence)
            for process, decided in result.decisions.items():
                vertex = Vertex(process, final_views[process])
                assert decision.assignment[vertex].value == decided
