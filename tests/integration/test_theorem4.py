"""Integration: Theorem 4 / Claims 5–6 — binary consensus called by ID
gives at best min{⌈log₂ 1/ε⌉, ⌈log₂ n⌉ − 1} (E12).
"""

from fractions import Fraction

import pytest

from repro.core import (
    ClosureComputer,
    aa_lower_bound_iis_bc,
    ceil_log,
)
from repro.objects import (
    AugmentedModel,
    BinaryConsensusBox,
    beta_input_function,
    majority_side,
)
from repro.tasks import liberal_approximate_agreement_task
from repro.tasks.inputs import input_simplex


def F(num, den=1):
    return Fraction(num, den)


BETA = {1: 0, 2: 1, 3: 0, 4: 0, 5: 1}


@pytest.fixture(scope="module")
def bc_model():
    return AugmentedModel(BinaryConsensusBox(), beta_input_function(BETA))


class TestClaim6:
    def test_majority_side_size(self):
        side = majority_side(BETA, [1, 2, 3, 4, 5])
        assert side == frozenset({1, 3, 4})
        assert len(side) >= 5 / 2

    @pytest.mark.slow
    def test_beta_closure_is_2eps_on_majority_side(self, bc_model):
        m, eps = 4, F(1, 4)
        side = sorted(majority_side(BETA, [1, 2, 3, 4, 5]))
        task = liberal_approximate_agreement_task(side, eps, m)
        target = liberal_approximate_agreement_task(side, 2 * eps, m)
        computer = ClosureComputer(task, bc_model)
        # Wide windows on the majority side; cache collapses translates.
        seen = set()
        for sigma in task.input_complex.simplices_of_dim(2):
            values = sorted(v.value for v in sigma.vertices)
            window = (values[0], values[-1])
            if window in seen or window[1] - window[0] < F(1, 2):
                continue
            seen.add(window)
            assert (
                computer.delta_prime(sigma).simplices
                == target.delta(sigma).simplices
            ), f"Claim 6 fails at {sigma.as_mapping()}"

    @pytest.mark.slow
    def test_mixed_beta_escapes_the_collapse(self, bc_model):
        # The paper's caveat: on participants spanning both β-sides, the
        # closure is NOT necessarily (2ε)-AA — the box genuinely helps.
        m, eps = 4, F(1, 4)
        mixed = [1, 2, 5]  # β = 0, 1, 1
        task = liberal_approximate_agreement_task(mixed, eps, m)
        target = liberal_approximate_agreement_task(mixed, 2 * eps, m)
        computer = ClosureComputer(task, bc_model)
        sigma = input_simplex({1: F(0), 2: F(1, 2), 5: F(1)})
        got = computer.delta_prime(sigma).simplices
        want = target.delta(sigma).simplices
        assert got > want  # strictly more outputs than 2ε-AA allows

    def test_homogeneous_side_box_output_forced(self, bc_model):
        # Mechanism behind Claim 6: among β⁻¹(0) the box always answers 0.
        sigma = input_simplex({1: F(0), 3: F(1, 2), 4: F(1)})
        complex_ = bc_model.one_round_complex(sigma)
        assert {v.value[0] for v in complex_.vertices} == {0}


class TestTheorem4Bound:
    @pytest.mark.parametrize(
        "n, eps, expected",
        [
            (3, F(1, 8), 1),
            (4, F(1, 8), 1),
            (8, F(1, 8), 2),
            (16, F(1, 8), 3),
            (32, F(1, 8), 3),  # ε side binds: min(3, 4) = 3
            (64, F(1, 64), 5),
        ],
    )
    def test_closed_form(self, n, eps, expected):
        assert aa_lower_bound_iis_bc(n, eps) == expected

    def test_recursion_arithmetic(self):
        # t applications halve processes and double ε: the bound is the
        # largest t with n / 2^(t-1) ≥ 3 and 2^(t-1) ε < 1 — matching the
        # min/ceil closed form for every instance below.
        for n in range(3, 70):
            for k in range(0, 7):
                eps = F(1, 2**k)
                bound = aa_lower_bound_iis_bc(n, eps)
                assert bound == min(
                    ceil_log(2, 1 / eps), ceil_log(2, n) - 1
                )

    def test_bc_weaker_than_plain_for_small_n(self):
        # For n = 3 the process side collapses immediately:
        # min(⌈log₂ 1/ε⌉, 1) — the ID-called box CAN help when n is tiny
        # relative to 1/ε (e.g. solving via leader election in ⌈log₂ n⌉
        # rounds), which the bound honestly reflects.
        assert aa_lower_bound_iis_bc(3, F(1, 1024)) == 1
