"""Integration: Theorems 1–2 verified constructively on real algorithms
(E13) — the f ↦ f' transformation applied to extracted decision maps.
"""

from fractions import Fraction


from repro.algorithms import HalvingAA, TwoProcessConsensusTAS, TwoProcessThirdsAA
from repro.core import speedup_decision_map, verify_speedup_theorem
from repro.models import ProtocolOperator
from repro.runtime import extract_decision_map
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    liberal_approximate_agreement_task,
)


def F(num, den=1):
    return Fraction(num, den)


class TestTheorem1OnAlgorithms:
    def test_two_round_thirds_speeds_up(self, iis):
        # A real 2-round algorithm (ε = 1/9): f' must solve CL(Π) in 1
        # round; CL(Π) = (3ε)-AA by Claim 2, and indeed the sped-up map is
        # the 1-round thirds algorithm in disguise.
        eps = F(1, 9)
        task = approximate_agreement_task([1, 2], eps, 9)
        algorithm = TwoProcessThirdsAA(eps)
        assert algorithm.rounds == 2
        decision = extract_decision_map(algorithm, iis, task.input_complex)
        report = verify_speedup_theorem(task, iis, decision)
        assert report.original_valid
        assert report.sped_up_valid
        assert report.holds

    def test_one_round_halving_speeds_up(self, iis):
        eps = F(1, 2)
        task = approximate_agreement_task([1, 2, 3], eps, 2)
        algorithm = HalvingAA(eps)
        decision = extract_decision_map(algorithm, iis, task.input_complex)
        report = verify_speedup_theorem(task, iis, decision)
        assert report.holds

    def test_sped_up_map_lands_in_3eps_for_two_procs(self, iis):
        # Quantitative content of the speedup: images of f' on the
        # (t-1)-round complex satisfy 3ε-agreement (Claim 2's closure).
        eps = F(1, 9)
        task = approximate_agreement_task([1, 2], eps, 9)
        algorithm = TwoProcessThirdsAA(eps)
        decision = extract_decision_map(algorithm, iis, task.input_complex)
        faster = speedup_decision_map(task, iis, decision)
        operator = ProtocolOperator(iis)
        for sigma in task.input_complex:
            lo = min(v.value for v in sigma.vertices)
            hi = max(v.value for v in sigma.vertices)
            for facet in operator.of_simplex(sigma, 1).facets:
                outputs = [
                    v.value
                    for v in faster.output_simplex(facet).vertices
                ]
                assert max(outputs) - min(outputs) <= 3 * eps
                assert all(lo <= y <= hi for y in outputs)


class TestTheorem2OnAlgorithms:
    def test_tas_consensus_speeds_up(self, iis_tas):
        # Theorem 2 (augmented): the 1-round test&set consensus algorithm
        # yields a 0-round solver of the closure (which allows any output
        # pair, so f' trivially qualifies — but the construction must
        # still be consistent with the box's solo answers).
        task = binary_consensus_task([1, 2])
        algorithm = TwoProcessConsensusTAS()
        decision = extract_decision_map(algorithm, iis_tas, task.input_complex)
        report = verify_speedup_theorem(task, iis_tas, decision)
        assert report.holds

    def test_liberal_aa_with_tas_speeds_up(self, iis_tas):
        # HalvingAA ignores the box output, so it runs unchanged in the
        # augmented model; Theorem 2 applies to it there.
        eps = F(1, 2)
        task = liberal_approximate_agreement_task([1, 2, 3], eps, 2)
        algorithm = HalvingAA(eps)
        decision = extract_decision_map(
            algorithm, iis_tas, task.input_complex
        )
        report = verify_speedup_theorem(task, iis_tas, decision)
        assert report.holds
