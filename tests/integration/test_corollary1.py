"""Integration: Corollary 1 — consensus is wait-free unsolvable (E3).

The paper's pipeline, end to end: (i) the closure of binary consensus
w.r.t. wait-free IIS is binary consensus itself; (ii) consensus is not
0-round solvable; (iii) by Lemma 1 it is unsolvable in any number of
rounds.  We additionally re-walk the path argument of the proof on the
one-round complex.
"""

import pytest

from repro.core import (
    ClosureComputer,
    impossibility_from_fixed_point,
    is_solvable,
    iterated_closure_lower_bound,
)
from repro.tasks import binary_consensus_task
from repro.tasks.inputs import input_simplex
from repro.topology import Vertex, View
from repro.topology.connectivity import shortest_path


class TestCorollary1:
    @pytest.mark.parametrize("n", [2, 3])
    def test_full_pipeline(self, iis, n):
        task = binary_consensus_task(list(range(1, n + 1)))
        mixed = [
            sigma
            for sigma in task.input_complex
            if len({v.value for v in sigma.vertices}) > 1 or sigma.dim == 0
        ]
        report = impossibility_from_fixed_point(
            task, iis, input_simplices=mixed
        )
        assert report.fixed_point
        assert not report.zero_round_solvable
        assert report.unsolvable

    def test_no_algorithm_for_any_small_round_count(self, iis):
        # The direct corollary, checked by brute force for t ∈ {0, 1, 2}.
        task = binary_consensus_task([1, 2])
        for rounds in (0, 1, 2):
            assert not is_solvable(task, iis, rounds)

    def test_closure_iteration_never_terminates(self, iis):
        task = binary_consensus_task([1, 2])
        # A fixed point pushes the generic engine to its cap.
        assert iterated_closure_lower_bound(task, iis, max_rounds=4) == 4

    def test_path_argument(self, iis):
        # The proof of Corollary 1 walks the 3-edge path between the two
        # solo vertices of P^(1)(τ); its existence is what forces equal
        # outputs.  τ = {(1, 0), (2, 1)}.
        tau = input_simplex({1: 0, 2: 1})
        complex_ = iis.protocol_complex(
            __import__(
                "repro.topology", fromlist=["SimplicialComplex"]
            ).SimplicialComplex.from_simplex(tau),
            1,
        )
        start = Vertex(1, View({1: 0}))
        goal = Vertex(2, View({2: 1}))
        path = shortest_path(complex_, start, goal)
        assert path is not None
        assert len(path) == 4  # three edges, as in the paper

    def test_uniform_inputs_remain_forced_in_closure(self, iis):
        task = binary_consensus_task([1, 2])
        computer = ClosureComputer(task, iis)
        sigma = input_simplex({1: 1, 2: 1})
        assert computer.legal_outputs(sigma) == [input_simplex({1: 1, 2: 1})]
