"""Integration: Corollary 2 — consensus is unsolvable for n > 2 even with
test&set (E6), while it IS solvable for n = 2 (Fig. 4).
"""


from repro.analysis import figure6_simplices
from repro.core import (
    ClosureComputer,
    impossibility_from_fixed_point,
    is_solvable,
)
from repro.tasks import binary_consensus_task, relaxed_consensus_task
from repro.tasks.inputs import input_simplex
from repro.topology import Simplex


class TestTwoProcessesSolvable:
    def test_consensus_solvable_one_round(self, iis_tas):
        assert is_solvable(binary_consensus_task([1, 2]), iis_tas, 1)

    def test_but_not_zero_rounds(self, iis_tas):
        # The box is not used in a 0-round algorithm.
        assert not is_solvable(binary_consensus_task([1, 2]), iis_tas, 0)


class TestThreeProcessesImpossible:
    def test_relaxed_consensus_is_fixed_point(self, iis_tas):
        task = relaxed_consensus_task([1, 2, 3])
        report = impossibility_from_fixed_point(task, iis_tas)
        assert report.fixed_point
        assert report.unsolvable

    def test_consensus_itself_not_fixed_point_but_relaxation_suffices(
        self, iis_tas
    ):
        # The paper's subtlety: plain consensus is NOT a fixed point (its
        # 2-process faces are solvable with test&set) — which is exactly
        # why the relaxed task is introduced.
        strict = binary_consensus_task([1, 2, 3])
        computer = ClosureComputer(strict, iis_tas)
        edge = input_simplex({1: 0, 2: 1})
        extra = set(computer.legal_outputs(edge)) - set(
            strict.delta(edge).facets
        )
        assert extra  # closure strictly bigger on edges

    def test_relaxed_closure_rejects_three_way_disagreement(self, iis_tas):
        task = relaxed_consensus_task([1, 2, 3])
        computer = ClosureComputer(task, iis_tas)
        sigma = input_simplex({1: 0, 2: 1, 3: 1})
        assert not computer.contains(sigma, input_simplex({1: 0, 2: 1, 3: 1}))
        assert not computer.contains(sigma, input_simplex({1: 1, 2: 1, 3: 0}))

    def test_rho_simplices_drive_the_argument(self, iis_tas):
        # The proof inspects ρ_{i,j,k} and ρ_{j,i,k}; both must exist in
        # the one-round complex over τ for the argument to bind outputs.
        tau_values = {1: 0, 2: 1, 3: 1}
        rho_ijk, rho_jik = figure6_simplices(tau_values, 1, 2, 3)
        complex_ = iis_tas.one_round_complex(Simplex(tau_values.items()))
        assert rho_ijk in complex_
        assert rho_jik in complex_

    def test_brute_force_unsolvability_small_rounds(self, iis_tas):
        task = binary_consensus_task([1, 2, 3])
        assert not is_solvable(task, iis_tas, 0)
        assert not is_solvable(task, iis_tas, 1)
