"""Tests for the metrics registry: counters, gauges, histograms, caches."""

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_increments(self):
        tally = Counter("events")
        tally.inc()
        tally.inc(4)
        assert tally.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("events").inc(-1)

    def test_reset(self):
        tally = Counter("events")
        tally.inc(3)
        tally.reset()
        assert tally.value == 0


class TestGauge:
    def test_moves_both_ways(self):
        level = Gauge("depth")
        level.set(7)
        level.set(2.5)
        assert level.value == 2.5


class TestHistogramPercentiles:
    def test_empty_percentile_is_none(self):
        assert Histogram("t").percentile(50) is None

    def test_single_observation(self):
        hist = Histogram("t")
        hist.observe(42)
        assert hist.percentile(0) == 42
        assert hist.percentile(50) == 42
        assert hist.percentile(100) == 42

    def test_linear_interpolation(self):
        # Sorted sample [10, 20, 30, 40]: rank(p50) = 1.5 interpolates
        # between 20 and 30; rank(p25) = 0.75 between 10 and 20.
        hist = Histogram("t")
        for value in (40, 10, 30, 20):
            hist.observe(value)
        assert hist.percentile(50) == 25.0
        assert hist.percentile(25) == 17.5
        assert hist.percentile(0) == 10.0
        assert hist.percentile(100) == 40.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram("t").percentile(101)

    def test_observe_after_percentile_resorts(self):
        hist = Histogram("t")
        hist.observe(10)
        assert hist.percentile(100) == 10
        hist.observe(5)
        assert hist.percentile(0) == 5

    def test_summary_empty_is_all_zero(self):
        summary = Histogram("t").summary()
        assert summary == {
            "count": 0.0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_summary_fields(self):
        hist = Histogram("t")
        for value in range(1, 11):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 10.0
        assert summary["sum"] == 55.0
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["p50"] == 5.5


class TestRegistry:
    def test_fetch_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.cache("c") is registry.cache("c")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")

    def test_enumeration_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert [c.name for c in registry.counters()] == ["a", "b"]

    def test_snapshot_flattens_cumulative_metrics(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        cache = registry.cache("memo")
        cache.hit()
        cache.miss()
        registry.histogram("lat").observe(3.0)
        registry.gauge("level").set(9)
        snap = registry.snapshot()
        assert snap["counter:n"] == 2
        assert snap["cache:memo:hits"] == 1
        assert snap["cache:memo:misses"] == 1
        assert snap["hist:lat:count"] == 1
        assert snap["hist:lat:sum"] == 3.0
        # Gauges are levels, not accumulations: excluded from deltas.
        assert not any(key.startswith("gauge") for key in snap)

    def test_delta_omits_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("b").inc()
        before = registry.snapshot()
        registry.counter("a").inc(3)
        delta = MetricsRegistry.delta(before, registry.snapshot())
        assert delta == {"counter:a": 3}

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1)
        registry.cache("c").miss()
        registry.reset()
        assert registry.counter("a").value == 0
        assert registry.gauge("g").value == 0.0
        assert registry.histogram("h").count == 0
        assert registry.cache("c").misses == 0


class TestInstrumentationShim:
    def test_counter_is_registry_resident(self):
        from repro.instrumentation import counter
        from repro.telemetry import default_registry

        tally = counter("test-shim.sample")
        assert tally is default_registry().cache("test-shim.sample")

    def test_snapshot_delta_shape_unchanged(self):
        from repro.instrumentation import (
            counter,
            counters_delta,
            counters_snapshot,
        )

        tally = counter("test-shim.delta")
        before = counters_snapshot()
        tally.hit()
        tally.miss()
        delta = counters_delta(before, counters_snapshot())
        assert delta["test-shim.delta"] == (1, 1)
