"""CLI round-trip: --trace artifacts through summarize and check."""

import json

import pytest

from repro.cli import main
from repro.telemetry import is_enabled


class TestExperimentTrace:
    def test_roundtrip_through_summarize(self, tmp_path, capsys):
        artifact = tmp_path / "e9.trace.json"
        assert main(["experiment", "E9", "--trace", str(artifact)]) == 0
        assert not is_enabled()  # the tracer was uninstalled again

        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-trace"
        assert payload["spans"][0]["name"] == "experiment/E9"

        capsys.readouterr()
        assert main(["trace", "summarize", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "experiment/E9" in out
        assert "self ms" in out

    def test_chrome_format(self, tmp_path):
        artifact = tmp_path / "e9.chrome.json"
        assert (
            main(
                [
                    "experiment",
                    "E9",
                    "--trace",
                    str(artifact),
                    "--trace-format",
                    "chrome",
                ]
            )
            == 0
        )
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        events = payload["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)

    def test_run_command_traced(self, tmp_path):
        artifact = tmp_path / "run.trace.json"
        assert (
            main(
                [
                    "run",
                    "halving",
                    "--inputs",
                    "0,1",
                    "--trace",
                    str(artifact),
                ]
            )
            == 0
        )
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-trace"


class TestCheckTrace:
    def test_valid_artifact_is_clean(self, tmp_path, capsys):
        artifact = tmp_path / "trace.json"
        assert main(["experiment", "E9", "--trace", str(artifact)]) == 0
        capsys.readouterr()
        assert main(["check", "--trace", str(artifact)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_malformed_artifact_fails(self, tmp_path, capsys):
        artifact = tmp_path / "bad.json"
        artifact.write_text(
            json.dumps(
                {
                    "format": "repro-trace",
                    "version": 1,
                    "spans": [
                        {
                            "name": "open",
                            "start": 0.0,
                            "end": None,
                            "status": "ok",
                            "attributes": {},
                            "metrics": {},
                            "children": [],
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        assert main(["check", "--trace", str(artifact)]) == 1
        assert "AUD011" in capsys.readouterr().out


class TestSummarizeErrors:
    def test_missing_file_exits(self):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["trace", "summarize", "/nonexistent/trace.json"])

    def test_chrome_artifact_rejected_with_hint(self, tmp_path):
        artifact = tmp_path / "chrome.json"
        artifact.write_text(
            json.dumps({"traceEvents": []}), encoding="utf-8"
        )
        with pytest.raises(SystemExit, match="Chrome"):
            main(["trace", "summarize", str(artifact)])
