"""Tests for span semantics: nesting, exception unwind, the fast path."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    NOOP_SPAN,
    ManualClock,
    MetricsRegistry,
    Tracer,
    current_tracer,
    disable,
    enable,
    is_enabled,
    span,
    tracing,
)


def make_tracer(**kwargs):
    kwargs.setdefault("clock", ManualClock(tick=1.0))
    kwargs.setdefault("registry", MetricsRegistry())
    return Tracer(**kwargs)


class TestNesting:
    def test_sibling_and_child_structure(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                with tracer.span("leaf"):
                    pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == [
            "first",
            "second",
        ]
        assert outer.children[1].children[0].name == "leaf"
        assert tracer.finished()

    def test_manual_clock_durations(self):
        tracer = make_tracer(clock=ManualClock(start=10.0, tick=1.0))
        with tracer.span("a") as entry:
            pass
        assert entry.start == 10.0
        assert entry.end == 11.0
        assert entry.duration == 1.0

    def test_attributes_coerced_at_record_time(self):
        from fractions import Fraction

        tracer = make_tracer()
        with tracer.span("a", eps=Fraction(1, 8), n=3, flag=True) as entry:
            entry.set_attribute("obj", object())
        assert entry.attributes["eps"] == "1/8"
        assert entry.attributes["n"] == 3
        assert entry.attributes["flag"] is True
        assert isinstance(entry.attributes["obj"], str)

    def test_empty_name_rejected(self):
        with pytest.raises(TelemetryError):
            make_tracer().span("")

    def test_reentering_a_span_rejected(self):
        tracer = make_tracer()
        entry = tracer.span("once")
        with entry:
            pass
        with pytest.raises(TelemetryError):
            entry.__enter__()


class TestExceptionUnwind:
    def test_error_status_and_propagation(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        outer = tracer.roots[0]
        inner = outer.children[0]
        # Both spans closed on the way out, both marked failed, and the
        # exception still propagated to pytest.raises.
        assert tracer.finished()
        assert inner.closed and outer.closed
        assert inner.status == "error"
        assert inner.attributes["error"] == "ValueError"
        assert outer.status == "error"

    def test_explicit_error_attribute_wins(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("a", error="custom") as entry:
                raise RuntimeError
        assert entry.attributes["error"] == "custom"


class TestMetricsCapture:
    def test_span_records_registry_delta(self):
        registry = MetricsRegistry()
        tracer = make_tracer(registry=registry)
        with tracer.span("work") as entry:
            registry.cache("memo").miss()
            registry.counter("steps").inc(3)
        assert entry.metrics == {
            "cache:memo:misses": 1,
            "counter:steps": 3,
        }

    def test_delta_nests_per_span(self):
        registry = MetricsRegistry()
        tracer = make_tracer(registry=registry)
        with tracer.span("outer") as outer:
            registry.counter("steps").inc()
            with tracer.span("inner") as inner:
                registry.counter("steps").inc(2)
        assert inner.metrics == {"counter:steps": 2}
        # The outer delta covers the whole window, child included.
        assert outer.metrics == {"counter:steps": 3}

    def test_capture_disabled(self):
        registry = MetricsRegistry()
        tracer = make_tracer(registry=registry, capture_metrics=False)
        with tracer.span("work") as entry:
            registry.counter("steps").inc()
        assert entry.metrics == {}


class TestModuleFastPath:
    def test_disabled_returns_shared_noop(self):
        assert not is_enabled()
        handle = span("anything", key="value")
        assert handle is NOOP_SPAN
        with handle as inside:
            inside.set_attribute("ignored", 1)

    def test_enable_disable_roundtrip(self):
        tracer = make_tracer()
        assert enable(tracer) is tracer
        try:
            assert is_enabled()
            assert current_tracer() is tracer
            with span("root"):
                pass
        finally:
            assert disable() is tracer
        assert not is_enabled()
        assert [root.name for root in tracer.roots] == ["root"]

    def test_tracing_context_manager_uninstalls_on_error(self):
        with pytest.raises(RuntimeError):
            with tracing(clock=ManualClock(tick=1.0)) as tracer:
                with span("doomed"):
                    raise RuntimeError
        assert not is_enabled()
        assert tracer.finished()
        assert tracer.roots[0].status == "error"
