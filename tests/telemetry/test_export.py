"""Tests for the trace exporters: JSON tree, Chrome events, text table."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    ManualClock,
    MetricsRegistry,
    Tracer,
    chrome_events,
    load_trace,
    render_chrome,
    render_json,
    render_text,
    self_time_table,
    trace_tree,
)


def recorded_tracer():
    """A deterministic two-level trace: outer [0,3] with child [1,2]."""
    tracer = Tracer(
        clock=ManualClock(tick=1.0), registry=MetricsRegistry()
    )
    with tracer.span("outer", phase="demo"):
        with tracer.span("inner", round=1):
            tracer.registry.cache("memo").miss()
    return tracer


class TestJsonTree:
    def test_schema(self):
        tree = trace_tree(recorded_tracer())
        assert tree["format"] == "repro-trace"
        assert tree["version"] == 1
        (outer,) = tree["spans"]
        assert outer["name"] == "outer"
        assert outer["status"] == "ok"
        assert outer["attributes"] == {"phase": "demo"}
        (inner,) = outer["children"]
        assert inner["attributes"] == {"round": 1}
        assert inner["metrics"] == {"cache:memo:misses": 1}

    def test_render_is_deterministic_json(self):
        tracer = recorded_tracer()
        text = render_json(tracer)
        assert text == render_json(trace_tree(tracer))
        assert json.loads(text)["format"] == "repro-trace"

    def test_open_span_refuses_export(self):
        tracer = Tracer(
            clock=ManualClock(tick=1.0), registry=MetricsRegistry()
        )
        entry = tracer.span("open")
        entry.__enter__()
        with pytest.raises(TelemetryError):
            trace_tree(tracer)


class TestChromeEvents:
    def test_event_schema(self):
        payload = chrome_events(recorded_tracer())
        events = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"
        assert [event["name"] for event in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["pid"] == 1 and event["tid"] == 1
        outer, inner = events
        # ManualClock ticks 1 s per reading; timestamps are microseconds.
        assert outer["dur"] == pytest.approx(3_000_000.0)
        assert inner["dur"] == pytest.approx(1_000_000.0)
        assert inner["ts"] > outer["ts"]

    def test_args_carry_attributes_and_metrics(self):
        payload = chrome_events(recorded_tracer())
        inner = payload["traceEvents"][1]
        assert inner["args"]["round"] == 1
        assert inner["args"]["metric:cache:memo:misses"] == 1

    def test_render_chrome_is_json(self):
        parsed = json.loads(render_chrome(recorded_tracer()))
        assert "traceEvents" in parsed


class TestSelfTime:
    def test_self_excludes_children(self):
        rows = {
            name: (count, total, self_)
            for name, count, total, self_ in self_time_table(
                recorded_tracer()
            )
        }
        # outer spans [t, t+3] with inner [t+1, t+2]: 2 s self of 3 s.
        assert rows["outer"] == (1, 3.0, 2.0)
        assert rows["inner"] == (1, 1.0, 1.0)

    def test_render_text_table(self):
        text = render_text(recorded_tracer())
        assert "trace summary" in text
        assert "self ms" in text
        assert "outer" in text and "inner" in text

    def test_top_truncation(self):
        text = render_text(recorded_tracer(), top=1)
        assert "(+ 1 more span names)" in text


class TestLoadTrace:
    def test_roundtrip(self):
        tracer = recorded_tracer()
        loaded = load_trace(render_json(tracer))
        assert loaded == trace_tree(tracer)

    def test_rejects_non_json(self):
        with pytest.raises(TelemetryError, match="not JSON"):
            load_trace("not json at all")

    def test_rejects_chrome_artifact_with_hint(self):
        with pytest.raises(TelemetryError, match="Chrome"):
            load_trace(render_chrome(recorded_tracer()))

    def test_rejects_unknown_format(self):
        with pytest.raises(TelemetryError, match="unknown trace format"):
            load_trace(json.dumps({"format": "other", "spans": []}))

    def test_rejects_unknown_version(self):
        with pytest.raises(TelemetryError, match="version"):
            load_trace(
                json.dumps(
                    {"format": "repro-trace", "version": 99, "spans": []}
                )
            )

    def test_rejects_missing_spans(self):
        with pytest.raises(TelemetryError, match="spans"):
            load_trace(json.dumps({"format": "repro-trace", "version": 1}))


class TestMergeTraces:
    def test_merges_roots_in_input_order(self):
        from repro.telemetry import merge_traces

        first = trace_tree(recorded_tracer())
        second = trace_tree(recorded_tracer())
        merged = merge_traces([first, second])
        assert merged["format"] == first["format"]
        assert merged["version"] == first["version"]
        assert len(merged["spans"]) == len(first["spans"]) * 2
        # Merged artifacts feed the existing renderers unchanged.
        assert "outer" in render_text(merged)

    def test_empty_merge_is_an_empty_forest(self):
        from repro.telemetry import merge_traces

        assert merge_traces([])["spans"] == []

    def test_rejects_foreign_artifacts(self):
        from repro.telemetry import merge_traces

        with pytest.raises(TelemetryError, match="cannot merge"):
            merge_traces([{"traceEvents": []}])

    def test_round_trips_through_load_trace(self):
        from repro.telemetry import merge_traces

        merged = merge_traces([trace_tree(recorded_tracer())])
        assert load_trace(json.dumps(merged)) == merged
