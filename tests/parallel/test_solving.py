"""Parallel solvability search returns exactly the serial answer."""

from fractions import Fraction

import pytest

from repro.core import find_decision_map, is_solvable
from repro.models import ImmediateSnapshotModel
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
)


@pytest.fixture
def iis():
    return ImmediateSnapshotModel()


class TestParallelSolving:
    def test_solvable_instance_same_map(self, iis):
        task = approximate_agreement_task([1, 2], Fraction(1, 2), 2)
        serial = find_decision_map(task, iis, 1, workers=1)
        parallel = find_decision_map(task, iis, 1, workers=2)
        assert serial is not None and parallel is not None
        # Same map, not merely equi-solvable verdicts: the workers skip
        # re-propagation so their variable order matches the serial
        # component search exactly.
        assert parallel.assignment == serial.assignment
        assert parallel.rounds == serial.rounds

    def test_unsolvable_instance_same_verdict(self, iis):
        task = binary_consensus_task([1, 2])
        assert not is_solvable(task, iis, 1, workers=1)
        assert not is_solvable(task, iis, 1, workers=2)

    def test_zero_round_identity(self, iis):
        task = approximate_agreement_task([1, 2], Fraction(2, 1), 2)
        assert is_solvable(task, iis, 0, workers=2) == is_solvable(
            task, iis, 0, workers=1
        )
