"""The determinism contract: worker count never changes any result.

Covers the three fan-outs at ``workers ∈ {1, 2}`` in the default tier-1
run; the 4-worker sweeps are marked ``slow`` (they add pool spin-up
latency without new code paths on small hosts).
"""

import json
from fractions import Fraction

import pytest

from repro.core import is_solvable
from repro.faults import CampaignConfig, report_to_json, run_campaign
from repro.faults.executor import ExecutorFaultPlan, fault_for
from repro.models import ImmediateSnapshotModel
from repro.models.protocol import ProtocolOperator
from repro.parallel.supervisor import SupervisorConfig
from repro.tasks import approximate_agreement_task
from repro.topology import Simplex


def _triangle():
    return Simplex((i, f"x{i}") for i in range(1, 4))


def _campaign_json(workers, supervisor=None):
    config = CampaignConfig(
        cell="aa-broken", n=3, t=1, executions=40, seed=7
    )
    report = run_campaign(config, workers=workers, supervisor=supervisor)
    return json.dumps(report_to_json(report), sort_keys=True)


def _protocol_facets(rounds, workers):
    operator = ProtocolOperator(ImmediateSnapshotModel())
    return operator.of_simplex(_triangle(), rounds, workers=workers).facets


class TestChaosDeterminism:
    def test_two_workers_byte_identical(self):
        assert _campaign_json(2) == _campaign_json(1)

    @pytest.mark.slow
    def test_four_workers_byte_identical(self):
        assert _campaign_json(4) == _campaign_json(1)


class TestSupervisedChaosDeterminism:
    """The PR-8 acceptance property: executor-level fault injection —
    including SIGKILLed workers — never changes a campaign's bytes."""

    PLAN = ExecutorFaultPlan(
        seed=3, kill_rate=0.2, error_rate=0.2, faulty_attempts=1
    )

    def test_plan_actually_schedules_a_worker_kill(self):
        # Guard: if a future re-seed made the plan vacuous, the
        # byte-identity test below would silently stop testing recovery.
        faults = [fault_for(self.PLAN, i, 0) for i in range(8)]
        assert "kill" in faults

    def test_injected_kills_byte_identical_to_fault_free_serial(self):
        supervisor = SupervisorConfig(
            retries=2, backoff_base=0.0, fault_plan=self.PLAN
        )
        chaotic = _campaign_json(2, supervisor=supervisor)
        assert chaotic == _campaign_json(1)


class TestProtocolDeterminism:
    def test_two_workers_identical_facet_sets(self):
        # The E1/E19 workload: P^(t) over IIS on the 3-process triangle.
        assert _protocol_facets(2, 2) == _protocol_facets(2, 1)

    @pytest.mark.slow
    def test_four_workers_identical_facet_sets(self):
        assert _protocol_facets(3, 4) == _protocol_facets(3, 1)


class TestSolvabilityDeterminism:
    @pytest.mark.parametrize(
        "epsilon,m", [(Fraction(1, 2), 2), (Fraction(1, 4), 4)]
    )
    def test_verdicts_identical_across_worker_counts(self, epsilon, m):
        task = approximate_agreement_task([1, 2], epsilon, m)
        iis = ImmediateSnapshotModel()
        serial = is_solvable(task, iis, 1, workers=1)
        assert is_solvable(task, iis, 1, workers=2) == serial

    @pytest.mark.slow
    def test_four_worker_verdict(self):
        task = approximate_agreement_task([1, 2], Fraction(1, 2), 2)
        iis = ImmediateSnapshotModel()
        assert is_solvable(task, iis, 1, workers=4) == is_solvable(
            task, iis, 1, workers=1
        )
