"""Supervised fan-out: retries, backoff, quarantine, recovery, breaker."""

import pytest

from repro.errors import QuarantineError, ReproError, WorkerCrashError
from repro.faults.executor import ExecutorFaultPlan
from repro.parallel.pool import parallel_map, set_default_workers
from repro.parallel.supervisor import (
    SupervisorConfig,
    backoff_delay,
    get_default_supervisor,
    resolve_supervisor,
    set_default_supervisor,
    supervised_map,
)
from repro.telemetry import ManualClock, set_ambient_clock


def _square(x):
    return x * x


def _always_raises(x):
    raise ValueError(f"poisoned payload {x}")


def _negate(x):
    return -x


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    set_default_workers(None)
    set_default_supervisor(None)
    set_ambient_clock(None)


class TestConfig:
    def test_validate_rejects_bad_values(self):
        for bad in (
            SupervisorConfig(retries=-1),
            SupervisorConfig(task_timeout=0.0),
            SupervisorConfig(backoff_base=-0.1),
            SupervisorConfig(backoff_jitter=-1.0),
            SupervisorConfig(breaker_threshold=-1),
        ):
            with pytest.raises(ReproError):
                bad.validate()

    def test_default_supervisor_round_trip(self):
        assert get_default_supervisor() is None
        config = SupervisorConfig(retries=5)
        set_default_supervisor(config)
        assert get_default_supervisor() is config
        assert resolve_supervisor(None) is config
        explicit = SupervisorConfig(retries=1)
        assert resolve_supervisor(explicit) is explicit

    def test_set_default_validates(self):
        with pytest.raises(ReproError):
            set_default_supervisor(SupervisorConfig(retries=-1))

    def test_backoff_is_deterministic_exponential_and_capped(self):
        config = SupervisorConfig(
            backoff_base=0.1, backoff_cap=0.5, backoff_jitter=0.0
        )
        assert backoff_delay(config, 0, 1) == pytest.approx(0.1)
        assert backoff_delay(config, 0, 2) == pytest.approx(0.2)
        assert backoff_delay(config, 0, 4) == pytest.approx(0.5)
        assert backoff_delay(config, 0, 0) == 0.0
        jittered = SupervisorConfig(
            backoff_base=0.1, backoff_cap=0.5, backoff_jitter=0.5
        )
        first = backoff_delay(jittered, 3, 2)
        assert first == backoff_delay(jittered, 3, 2)
        assert 0.2 <= first <= 0.3


class TestSerialSupervision:
    def test_clean_map_matches_parallel_map(self):
        outcome = supervised_map(_square, list(range(8)), workers=1)
        plain = parallel_map(_square, list(range(8)), workers=1)
        assert outcome.results == plain.results
        assert outcome.completed == 8
        assert outcome.retries == 0
        assert outcome.attempts == []
        assert outcome.quarantined == []

    def test_transient_faults_retried_to_success(self):
        plan = ExecutorFaultPlan(
            seed=3, error_rate=0.5, faulty_attempts=1
        )
        config = SupervisorConfig(
            retries=2, backoff_base=0.0, fault_plan=plan
        )
        outcome = supervised_map(
            _square, list(range(12)), workers=1, config=config
        )
        assert outcome.results == [x * x for x in range(12)]
        assert outcome.retries > 0
        retried = {attempt.index for attempt in outcome.attempts}
        assert retried  # the plan injected at least one error

    def test_backoff_sleeps_through_ambient_clock(self):
        clock = ManualClock()
        set_ambient_clock(clock)
        plan = ExecutorFaultPlan(
            seed=0, error_rate=1.0, faulty_attempts=1
        )
        config = SupervisorConfig(
            retries=1,
            backoff_base=0.5,
            backoff_jitter=0.0,
            fault_plan=plan,
        )
        outcome = supervised_map(_square, [2, 3], workers=1, config=config)
        assert outcome.results == [4, 9]
        slept = [a.backoff_s for a in outcome.attempts if a.backoff_s]
        assert slept == [0.5, 0.5]
        assert clock.now() == pytest.approx(1.0)

    def test_poison_task_quarantined_and_raised(self):
        config = SupervisorConfig(retries=1, backoff_base=0.0)
        with pytest.raises(QuarantineError) as excinfo:
            supervised_map(
                _always_raises, [7], workers=1, config=config
            )
        (record,) = excinfo.value.quarantined
        assert record.index == 0
        assert record.error == "ValueError"
        assert record.attempts == 2

    def test_quarantine_keep_leaves_other_results_intact(self):
        plan = ExecutorFaultPlan(
            seed=0, error_rate=1.0, faulty_attempts=99
        )
        config = SupervisorConfig(
            retries=1, backoff_base=0.0, fault_plan=plan
        )
        outcome = supervised_map(
            _square,
            [1, 2, 3],
            workers=1,
            config=config,
            on_quarantine="keep",
        )
        assert outcome.results == [None, None, None]
        assert len(outcome.quarantined) == 3
        assert outcome.completed == 0
        history = [(a.index, a.attempt, a.kind) for a in outcome.attempts]
        assert history == [
            (0, 0, "error"), (0, 1, "error"),
            (1, 0, "error"), (1, 1, "error"),
            (2, 0, "error"), (2, 1, "error"),
        ]

    def test_fallback_redeems_final_attempt(self):
        config = SupervisorConfig(retries=1, backoff_base=0.0)
        outcome = supervised_map(
            _always_raises,
            [5],
            workers=1,
            config=config,
            fallback=_negate,
        )
        assert outcome.results == [-5]
        kinds = [a.kind for a in outcome.attempts]
        assert kinds == ["error", "fallback"]
        assert outcome.quarantined == []

    def test_task_timeout_classifies_slow_attempts(self):
        clock = ManualClock()
        set_ambient_clock(clock)
        # Each _slow_square call advances the scripted clock past the
        # 1s budget, so every attempt is a timeout and the task ends
        # in quarantine with a structured record.
        config = SupervisorConfig(
            retries=1, backoff_base=0.0, task_timeout=1.0
        )
        outcome = supervised_map(
            _slow_square,
            [4],
            workers=1,
            config=config,
            on_quarantine="keep",
        )
        assert outcome.results == [None]
        (record,) = outcome.quarantined
        assert record.error == "TaskTimeout"
        assert all(a.kind == "timeout" for a in outcome.attempts)

    def test_invalid_on_quarantine_rejected(self):
        with pytest.raises(ReproError):
            supervised_map(_square, [1], on_quarantine="ignore")

    def test_stop_when_fires_only_on_results(self):
        config = SupervisorConfig(retries=0)
        outcome = supervised_map(
            _square,
            list(range(6)),
            workers=1,
            config=config,
            stop_when=lambda result: result == 9,
        )
        assert outcome.stopped_early
        assert outcome.results[:4] == [0, 1, 4, 9]
        assert outcome.results[4:] == [None, None]


def _slow_square(x):
    from repro.telemetry import ambient_clock

    ambient_clock().sleep(2.0)
    return x * x


class TestPooledSupervision:
    def test_worker_kills_recovered_by_pool_rebuild(self):
        plan = ExecutorFaultPlan(
            seed=3, kill_rate=0.2, error_rate=0.2, faulty_attempts=1
        )
        config = SupervisorConfig(
            retries=2, backoff_base=0.0, fault_plan=plan
        )
        outcome = supervised_map(
            _square, list(range(12)), workers=2, config=config
        )
        assert outcome.results == [x * x for x in range(12)]
        assert outcome.completed == 12
        assert outcome.pool_rebuilds >= 1
        assert not outcome.degraded
        # The rebuilt pool is immediately usable for plain fan-out.
        again = parallel_map(_square, [1, 2, 3], workers=2)
        assert again.results == [1, 4, 9]

    def test_fault_injected_run_matches_fault_free_serial(self):
        plan = ExecutorFaultPlan(
            seed=3, kill_rate=0.2, error_rate=0.2, faulty_attempts=1
        )
        config = SupervisorConfig(
            retries=2, backoff_base=0.0, fault_plan=plan
        )
        chaotic = supervised_map(
            _square, list(range(12)), workers=2, config=config
        )
        baseline = supervised_map(_square, list(range(12)), workers=1)
        assert chaotic.results == baseline.results

    def test_breaker_degrades_to_serial(self):
        plan = ExecutorFaultPlan(
            seed=0, kill_rate=1.0, faulty_attempts=1
        )
        config = SupervisorConfig(
            retries=3,
            backoff_base=0.0,
            breaker_threshold=0,
            fault_plan=plan,
        )
        outcome = supervised_map(
            _square, list(range(6)), workers=2, config=config
        )
        assert outcome.degraded
        assert outcome.pool_rebuilds >= 1
        assert outcome.results == [x * x for x in range(6)]

    def test_breaker_without_degradation_raises(self):
        plan = ExecutorFaultPlan(
            seed=0, kill_rate=1.0, faulty_attempts=1
        )
        config = SupervisorConfig(
            retries=3,
            backoff_base=0.0,
            breaker_threshold=0,
            degrade=False,
            fault_plan=plan,
        )
        with pytest.raises(WorkerCrashError):
            supervised_map(
                _square, list(range(6)), workers=2, config=config
            )
