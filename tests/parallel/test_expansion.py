"""Parallel protocol expansion equals the serial operator exactly."""

from repro.models import ImmediateSnapshotModel, SnapshotModel
from repro.models.protocol import ProtocolOperator
from repro.parallel import (
    expand_one_round,
    materialize_protocol_complexes,
    parallel_of_complex,
)
from repro.parallel.expansion import cold_model
from repro.topology import Simplex, SimplicialComplex


def _triangle():
    return Simplex((i, f"x{i}") for i in range(1, 4))


def _edge():
    return Simplex((i, f"x{i}") for i in range(1, 3))


class TestColdModel:
    def test_detaches_memo_layers(self):
        model = ImmediateSnapshotModel()
        model.one_round_complex(_edge())  # warm the cache
        clone = cold_model(model)
        assert "_one_round_cache" not in clone.__dict__
        assert model.one_round_complex(_edge()) == clone.one_round_complex(
            _edge()
        )


class TestExpandOneRound:
    def test_equals_serial_one_round(self):
        model = ImmediateSnapshotModel()
        base = model.one_round_complex(_triangle())  # 13 facets ≥ threshold
        expanded = expand_one_round(cold_model(model), base, workers=2)
        serial = SimplicialComplex(
            [
                facet
                for sigma in base
                for facet in model.one_round_complex(sigma).facets
            ]
        )
        assert expanded == serial

    def test_seeds_the_parent_memo(self):
        model = cold_model(ImmediateSnapshotModel())
        base = model.one_round_complex(_triangle())
        expand_one_round(model, base, workers=2)
        for sigma in base:
            assert model.cached_one_round(sigma) is not None


class TestMaterializeProtocol:
    def test_table_matches_serial_operator(self):
        parallel_operator = ProtocolOperator(ImmediateSnapshotModel())
        serial_operator = ProtocolOperator(ImmediateSnapshotModel())
        sigmas = list(SimplicialComplex.from_simplex(_triangle()))
        table = materialize_protocol_complexes(
            parallel_operator, sigmas, 2, workers=2
        )
        for sigma in sigmas:
            assert table[sigma] == serial_operator.of_simplex(sigma, 2)
            assert (
                parallel_operator.cached_of_simplex(sigma, 2) is not None
            )


class TestOperatorRouting:
    def test_of_simplex_identical_across_worker_counts(self):
        serial = ProtocolOperator(ImmediateSnapshotModel()).of_simplex(
            _triangle(), 2, workers=1
        )
        parallel = ProtocolOperator(ImmediateSnapshotModel()).of_simplex(
            _triangle(), 2, workers=2
        )
        assert parallel == serial
        assert len(parallel.facets) == 13**2

    def test_of_complex_identical_across_worker_counts(self):
        base = SimplicialComplex.from_simplex(_edge())
        serial = ProtocolOperator(SnapshotModel()).of_complex(
            base, 2, workers=1
        )
        parallel = ProtocolOperator(SnapshotModel()).of_complex(
            base, 2, workers=2
        )
        assert parallel == serial

    def test_parallel_of_complex_merge(self):
        base = SimplicialComplex.from_simplex(_triangle())
        serial = ProtocolOperator(ImmediateSnapshotModel()).of_complex(
            base, 1, workers=1
        )
        merged = parallel_of_complex(
            ProtocolOperator(ImmediateSnapshotModel()), base, 1, workers=2
        )
        assert merged == serial
