"""Worker resolution, chunking, and the parallel_map primitive."""

import threading
import time

import pytest

from repro.errors import ReproError
from repro.parallel import pool as pool_module
from repro.telemetry import default_registry, tracing
from repro.parallel.pool import (
    WORKERS_ENV,
    chunked,
    discard_pool,
    get_default_workers,
    parallel_map,
    resolve_workers,
    set_default_workers,
    shutdown_pools,
)


def _square(x):
    return x * x


def _napping_square(payload):
    x, nap = payload
    time.sleep(nap)
    return x * x


@pytest.fixture(autouse=True)
def _clean_default():
    yield
    set_default_workers(None)


class TestResolveWorkers:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        set_default_workers(3)
        assert resolve_workers(2) == 2

    def test_process_default_beats_environment(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        set_default_workers(3)
        assert resolve_workers() == 3
        assert get_default_workers() == 3

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers() == 4

    def test_inside_worker_pins_serial(self, monkeypatch):
        monkeypatch.setattr(pool_module, "_in_worker", True)
        set_default_workers(8)
        assert resolve_workers(4) == 1

    @pytest.mark.parametrize("bad", [0, -1, 65])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(ReproError):
            resolve_workers(bad)
        with pytest.raises(ReproError):
            set_default_workers(bad)

    def test_malformed_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "two")
        with pytest.raises(ReproError):
            resolve_workers()


class TestChunked:
    def test_contiguous_and_complete(self):
        items = list(range(10))
        pieces = chunked(items, 3)
        assert [x for piece in pieces for x in piece] == items
        assert max(len(p) for p in pieces) - min(
            len(p) for p in pieces
        ) <= 1

    def test_drops_empty_pieces(self):
        assert chunked([1, 2], 5) == [(1,), (2,)]
        assert chunked([], 3) == []

    def test_rejects_nonpositive_chunk_count(self):
        with pytest.raises(ReproError):
            chunked([1], 0)


class TestParallelMapSerial:
    def test_results_in_input_order(self):
        outcome = parallel_map(_square, [3, 1, 2], workers=1)
        assert outcome.results == [9, 1, 4]
        assert outcome.completed == 3
        assert not outcome.stopped_early

    def test_stop_when_cancels_the_tail(self):
        outcome = parallel_map(
            _square, [1, 2, 3, 4], workers=1, stop_when=lambda r: r == 4
        )
        assert outcome.results == [1, 4, None, None]
        assert outcome.stopped_early

    def test_deadline_skips_everything_after_it(self):
        outcome = parallel_map(
            _square,
            [1, 2, 3],
            workers=1,
            deadline_at=time.monotonic() - 1.0,
        )
        assert outcome.results == [None, None, None]
        assert outcome.stopped_early


class TestParallelMapPool:
    def test_results_in_input_order(self):
        payloads = list(range(7))
        outcome = parallel_map(_square, payloads, workers=2)
        assert outcome.results == [x * x for x in payloads]
        assert outcome.completed == len(payloads)
        assert not outcome.stopped_early
        assert 1 <= len(outcome.worker_slots) <= 2
        assert sorted(outcome.worker_slots.values()) == list(
            range(len(outcome.worker_slots))
        )

    def test_stop_when_stops_early(self):
        payloads = [(x, 0.02) for x in range(12)]
        outcome = parallel_map(
            _napping_square,
            payloads,
            workers=2,
            stop_when=lambda r: r == 0,
        )
        assert outcome.stopped_early
        assert outcome.results[0] == 0
        # Whatever did complete landed at the right index.
        for index, result in enumerate(outcome.results):
            if result is not None:
                assert result == index * index

    def test_single_payload_runs_in_process(self):
        outcome = parallel_map(_square, [5], workers=2)
        assert outcome.results == [25]
        assert outcome.worker_slots == {}


def _worker_span_indexes(tracer):
    def walk(spans):
        for entry in spans:
            yield entry
            yield from walk(entry.children)

    return sorted(
        entry.attributes["index"]
        for entry in walk(tracer.roots)
        if entry.name.startswith("parallel/worker-")
    )


class TestParallelMapAccounting:
    def test_serial_path_observes_busy_histogram(self):
        # Regression: the serial loop incremented parallel.tasks but
        # never observed parallel.task-busy-s, so serial and pool runs
        # of one workload reported incomparable utilization.
        busy = default_registry().histogram("parallel.task-busy-s")
        tasks = default_registry().counter("parallel.tasks")
        busy_before, tasks_before = busy.count, tasks.value
        parallel_map(_square, [1, 2, 3], workers=1)
        assert tasks.value - tasks_before == 3
        assert busy.count - busy_before == 3

    def test_drained_tasks_get_full_worker_accounting(self):
        # Regression: futures reaped on the early-stop drain path were
        # folded into results but skipped the worker-slot assignment and
        # the parallel/worker-* span, so traces under-reported exactly
        # the tasks that raced a cancellation.
        payloads = [(0, 0.0), (1, 0.3), (2, 0.3), (3, 0.3)]
        with tracing() as tracer:
            outcome = parallel_map(
                _napping_square,
                payloads,
                workers=2,
                stop_when=lambda r: r == 0,
            )
        assert outcome.stopped_early
        # The executor prefetches work, so at least one napping task is
        # already in flight when the stop lands and must be drained.
        assert outcome.completed >= 2
        completed_indexes = sorted(
            index
            for index, result in enumerate(outcome.results)
            if result is not None
        )
        assert _worker_span_indexes(tracer) == completed_indexes
        assert sorted(outcome.worker_slots.values()) == list(
            range(len(outcome.worker_slots))
        )


class TestPoolLifecycle:
    def test_concurrent_shutdown_is_safe(self):
        # Regression: shutdown_pools() used to iterate the cache dict
        # while other threads could be inserting, so a concurrent
        # teardown (CLI finally-block vs. an audit thread) raced a
        # RuntimeError or leaked a live executor.
        parallel_map(_square, [1, 2, 3], workers=2)
        errors = []

        def _teardown():
            try:
                shutdown_pools()
            except Exception as exc:  # pragma: no cover - regression
                errors.append(exc)

        threads = [
            threading.Thread(target=_teardown) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert not pool_module._pools

    def test_discard_pool_forces_rebuild(self):
        first = parallel_map(_square, [1, 2, 3, 4], workers=2)
        discard_pool(2)
        assert 2 not in pool_module._pools
        second = parallel_map(_square, [1, 2, 3, 4], workers=2)
        assert second.results == first.results == [1, 4, 9, 16]

    def test_rebuilt_pool_worker_accounting_restarts(self):
        # Regression companion to the supervisor's pool recovery: after
        # a discard + rebuild, worker-slot numbering must restart from
        # zero on the new pool rather than leaking dead-executor PIDs.
        parallel_map(_square, list(range(8)), workers=2)
        discard_pool(2)
        outcome = parallel_map(
            _napping_square,
            [(x, 0.01) for x in range(8)],
            workers=2,
        )
        assert sorted(outcome.worker_slots.values()) == list(
            range(len(outcome.worker_slots))
        )
        assert 1 <= len(outcome.worker_slots) <= 2
