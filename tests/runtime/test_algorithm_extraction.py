"""Unit tests for symbolic decision-map extraction from algorithms."""

from fractions import Fraction


from repro.algorithms import HalvingAA, TwoProcessConsensusTAS, TwoProcessThirdsAA
from repro.core.solvability import DecisionMap
from repro.models import ProtocolOperator
from repro.runtime import extract_decision_map
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
)


def F(num, den=1):
    return Fraction(num, den)


class TestRegisterOnlyExtraction:
    def test_extracted_map_solves_the_task(self, iis):
        eps = F(1, 2)
        task = approximate_agreement_task([1, 2, 3], eps, 2)
        algorithm = HalvingAA(eps)
        decision = extract_decision_map(
            algorithm, iis, task.input_complex
        )
        assert isinstance(decision, DecisionMap)
        assert decision.rounds == algorithm.rounds
        operator = ProtocolOperator(iis)
        for sigma in task.input_complex:
            allowed = task.delta(sigma).simplices
            for facet in operator.of_simplex(sigma, algorithm.rounds).facets:
                assert decision.output_simplex(facet) in allowed

    def test_two_process_thirds_extraction(self, iis):
        eps = F(1, 3)
        task = approximate_agreement_task([1, 2], eps, 3)
        algorithm = TwoProcessThirdsAA(eps)
        assert algorithm.rounds == 1
        decision = extract_decision_map(algorithm, iis, task.input_complex)
        operator = ProtocolOperator(iis)
        for sigma in task.input_complex:
            allowed = task.delta(sigma).simplices
            for facet in operator.of_simplex(sigma, 1).facets:
                assert decision.output_simplex(facet) in allowed

    def test_extraction_covers_all_protocol_vertices(self, iis):
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        algorithm = TwoProcessThirdsAA(F(1, 2))
        decision = extract_decision_map(algorithm, iis, task.input_complex)
        operator = ProtocolOperator(iis)
        for sigma in task.input_complex:
            for vertex in operator.of_simplex(sigma, algorithm.rounds).vertices:
                assert vertex in decision.assignment


class TestAugmentedExtraction:
    def test_tas_consensus_extraction(self, iis_tas):
        task = binary_consensus_task([1, 2])
        algorithm = TwoProcessConsensusTAS()
        decision = extract_decision_map(
            algorithm, iis_tas, task.input_complex
        )
        operator = ProtocolOperator(iis_tas)
        for sigma in task.input_complex:
            allowed = task.delta(sigma).simplices
            for facet in operator.of_simplex(sigma, 1).facets:
                assert decision.output_simplex(facet) in allowed

    def test_extraction_consistent_with_executor(self, iis_tas):
        # The symbolic map and the operational executor must agree on the
        # synchronous execution.
        from repro.objects import TestAndSetBox
        from repro.runtime import FullSyncAdversary, IteratedExecutor

        task = binary_consensus_task([1, 2])
        algorithm = TwoProcessConsensusTAS()
        decision = extract_decision_map(
            algorithm, iis_tas, task.input_complex
        )
        executor = IteratedExecutor(box=TestAndSetBox())

        class FirstOption(FullSyncAdversary):
            def choose_assignment(self, round_index, schedule, options):
                return options[0]

        inputs = {1: 0, 2: 1}
        result = executor.run(algorithm, inputs, FirstOption())
        # Reconstruct the corresponding protocol vertex for process 1.
        from repro.topology import Vertex, View

        box_bit = result.trace[0].box_outputs[1]
        view = View({1: 0, 2: 1})
        vertex = Vertex(1, (box_bit, view))
        assert decision.assignment[vertex].value == result.decisions[1]
