"""Unit tests for SWMR registers and register arrays."""

import pytest

from repro.errors import RuntimeModelError
from repro.runtime import RegisterArray, SWMRRegister


class TestSWMRRegister:
    def test_write_then_read(self):
        register = SWMRRegister(owner=1)
        register.write(1, "payload")
        assert register.read() == "payload"

    def test_unwritten_reads_none(self):
        assert SWMRRegister(owner=1).read() is None

    def test_single_writer_enforced(self):
        register = SWMRRegister(owner=1)
        with pytest.raises(RuntimeModelError):
            register.write(2, "intruder")

    def test_access_counters(self):
        register = SWMRRegister(owner=1)
        register.write(1, "a")
        register.write(1, "b")
        register.read()
        assert register.write_count == 2
        assert register.read_count == 1


class TestRegisterArray:
    def test_write_and_read(self):
        array = RegisterArray((1, 2, 3))
        array.write(2, "x")
        assert array.read(2) == "x"
        assert array.read(1) is None

    def test_ids(self):
        assert RegisterArray((3, 1, 2)).ids == (1, 2, 3)

    def test_owner_enforced_per_slot(self):
        array = RegisterArray((1, 2))
        with pytest.raises(RuntimeModelError):
            array._registers[1].write(2, "intruder")

    def test_unknown_register(self):
        array = RegisterArray((1,))
        with pytest.raises(RuntimeModelError):
            array.write(9, "x")
        with pytest.raises(RuntimeModelError):
            array.read(9)

    def test_snapshot_only_sees_written(self):
        array = RegisterArray((1, 2, 3))
        array.write(1, "a")
        array.write(3, "c")
        assert array.snapshot() == {1: "a", 3: "c"}

    def test_written(self):
        array = RegisterArray((1, 2))
        assert array.written() == ()
        array.write(2, "x")
        assert array.written() == (2,)
