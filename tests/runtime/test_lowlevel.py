"""Operation-level executions must match the matrix-generated view maps.

These tests connect the runtime to the combinatorial models: every view map
a random interleaving produces is one of the paper's matrices (soundness),
and the standard adversaries reach all of them for small ``n``
(completeness).
"""

import random

import pytest

from repro.models.schedules import (
    collect_schedules,
    immediate_snapshot_schedules,
    snapshot_schedules,
    view_maps_of_schedules,
)
from repro.runtime import (
    random_collect_round,
    random_immediate_snapshot_round,
    random_snapshot_round,
)

IDS = [1, 2, 3]
VALUES = {1: "a", 2: "b", 3: "c"}


def normalize(view_map):
    return tuple(
        (process, tuple(sorted(view)))
        for process, view in sorted(view_map.items())
    )


@pytest.fixture(scope="module")
def collect_maps():
    return {
        normalize(m) for m in view_maps_of_schedules(collect_schedules(IDS))
    }


@pytest.fixture(scope="module")
def snapshot_maps():
    return {
        normalize(m) for m in view_maps_of_schedules(snapshot_schedules(IDS))
    }


@pytest.fixture(scope="module")
def is_maps():
    return {
        normalize(m)
        for m in view_maps_of_schedules(immediate_snapshot_schedules(IDS))
    }


class TestSoundness:
    def test_collect_rounds_within_matrices(self, collect_maps):
        rng = random.Random(7)
        for _ in range(400):
            views = random_collect_round(IDS, VALUES, rng)
            assert normalize(views) in collect_maps

    def test_snapshot_rounds_within_snapshot_matrices(self, snapshot_maps):
        rng = random.Random(11)
        for _ in range(400):
            views = random_snapshot_round(IDS, VALUES, rng)
            assert normalize(views) in snapshot_maps

    def test_is_rounds_within_is_matrices(self, is_maps):
        rng = random.Random(13)
        for _ in range(400):
            views = random_immediate_snapshot_round(IDS, VALUES, rng)
            assert normalize(views) in is_maps

    def test_every_process_sees_itself(self):
        rng = random.Random(17)
        for _ in range(100):
            for runner in (
                random_collect_round,
                random_snapshot_round,
                random_immediate_snapshot_round,
            ):
                views = runner(IDS, VALUES, rng)
                for process, view in views.items():
                    assert process in view


class TestCompleteness:
    def test_random_collect_reaches_all_two_proc_views(self):
        rng = random.Random(23)
        reached = set()
        for _ in range(500):
            reached.add(normalize(random_collect_round([1, 2], VALUES, rng)))
        expected = {
            normalize(m)
            for m in view_maps_of_schedules(collect_schedules([1, 2]))
        }
        assert reached == expected

    def test_random_is_reaches_all_three_proc_views(self, is_maps):
        rng = random.Random(29)
        reached = set()
        for _ in range(3000):
            reached.add(
                normalize(random_immediate_snapshot_round(IDS, VALUES, rng))
            )
        assert reached == is_maps

    def test_random_snapshot_covers_non_is_views(self, snapshot_maps, is_maps):
        # The snapshot executor must reach at least one chain view map
        # outside IIS (the Fig. 8(c) region).
        rng = random.Random(31)
        reached = set()
        for _ in range(3000):
            reached.add(normalize(random_snapshot_round(IDS, VALUES, rng)))
        assert reached <= snapshot_maps
        assert reached - is_maps
