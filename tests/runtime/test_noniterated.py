"""Tests for the non-iterated executor and phase-filtered halving AA."""

from fractions import Fraction

import pytest

from repro.algorithms import HalvingAA, NonIteratedHalvingAA
from repro.errors import RuntimeModelError
from repro.runtime import NonIteratedExecutor


def F(num, den=1):
    return Fraction(num, den)


INPUTS = {1: F(0), 2: F(1, 2), 3: F(1)}


class TestExecutorBasics:
    def test_everyone_decides(self):
        result = NonIteratedExecutor(seed=0).run(HalvingAA(F(1, 4)), INPUTS)
        assert sorted(result.decisions) == [1, 2, 3]

    def test_deterministic_per_seed(self):
        left = NonIteratedExecutor(seed=9).run(HalvingAA(F(1, 4)), INPUTS)
        right = NonIteratedExecutor(seed=9).run(HalvingAA(F(1, 4)), INPUTS)
        assert left.decisions == right.decisions

    def test_empty_inputs_rejected(self):
        with pytest.raises(RuntimeModelError):
            NonIteratedExecutor().run(HalvingAA(F(1, 2)), {})

    def test_observations_cover_all_phases(self):
        algorithm = HalvingAA(F(1, 4))
        result = NonIteratedExecutor(seed=1).run(algorithm, INPUTS)
        per_process = {}
        for obs in result.observations:
            per_process.setdefault(obs.process, []).append(obs.phase)
        for phases in per_process.values():
            assert phases == list(range(1, algorithm.rounds + 1))

    def test_outputs_stay_in_range(self):
        for seed in range(100):
            result = NonIteratedExecutor(seed=seed).run(
                HalvingAA(F(1, 4)), INPUTS
            )
            for value in result.decisions.values():
                assert F(0) <= value <= F(1)


class TestSynchronizedMode:
    def test_skew_at_most_one(self):
        # Phase barriers align progress, but a collect may still return the
        # previous-phase value of a process that has not written the
        # current phase yet — the residual non-iterated effect.
        for seed in range(30):
            result = NonIteratedExecutor(seed=seed, synchronized=True).run(
                HalvingAA(F(1, 4)), INPUTS
            )
            assert result.max_phase_skew() <= 1

    def test_even_synchronized_runs_can_violate_epsilon(self):
        # The crucial difference from the iterated model: an iterated
        # round-r collect of an unwritten register returns nothing, but the
        # non-iterated register exposes the stale round-(r-1) value.  That
        # alone breaks the round-indexed halving map on some schedules —
        # structurally hiding stale values is what the iterated model buys.
        eps = F(1, 4)
        violations = 0
        for seed in range(200):
            result = NonIteratedExecutor(seed=seed, synchronized=True).run(
                HalvingAA(eps), INPUTS
            )
            values = list(result.decisions.values())
            if max(values) - min(values) > eps:
                violations += 1
        assert violations > 0

    def test_phase_filter_repairs_synchronized_mode_too(self):
        eps = F(1, 4)
        for seed in range(200):
            result = NonIteratedExecutor(seed=seed, synchronized=True).run(
                NonIteratedHalvingAA(eps), INPUTS
            )
            values = list(result.decisions.values())
            assert max(values) - min(values) <= eps


class TestAsynchronousSkew:
    def test_skew_actually_occurs(self):
        skews = set()
        for seed in range(100):
            result = NonIteratedExecutor(seed=seed).run(
                HalvingAA(F(1, 8)), INPUTS
            )
            skews.add(result.max_phase_skew())
        assert max(skews) >= 1  # genuinely non-iterated behavior

    def test_plain_halving_breaks_under_asynchrony(self):
        # The E21 finding: stale reads defeat the round-indexed ε_r.
        eps = F(1, 4)
        violations = 0
        for seed in range(500):
            result = NonIteratedExecutor(seed=seed).run(
                HalvingAA(eps), INPUTS
            )
            values = list(result.decisions.values())
            if max(values) - min(values) > eps:
                violations += 1
        assert violations > 0

    def test_phase_filtered_halving_is_robust(self):
        eps = F(1, 4)
        algorithm = NonIteratedHalvingAA(eps)
        for seed in range(500):
            result = NonIteratedExecutor(seed=seed).run(algorithm, INPUTS)
            values = list(result.decisions.values())
            assert max(values) - min(values) <= eps
            assert all(F(0) <= v <= F(1) for v in values)

    def test_filtered_variant_declares_phase_awareness(self):
        assert NonIteratedHalvingAA(F(1, 2)).phase_aware
        assert not getattr(HalvingAA(F(1, 2)), "phase_aware", False)
