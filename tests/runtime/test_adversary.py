"""Unit tests for adversarial schedulers."""

import pytest

from repro.errors import RuntimeModelError
from repro.runtime import (
    FixedScheduleAdversary,
    FullSyncAdversary,
    RandomAdversary,
    SoloFirstAdversary,
    all_schedule_sequences,
)


ACTIVE = frozenset({1, 2, 3})


class TestFullSync:
    def test_single_block(self):
        schedule = FullSyncAdversary().schedule(1, ACTIVE)
        assert schedule.blocks() == (ACTIVE,)

    def test_no_crashes(self):
        assert FullSyncAdversary().crashes(1, ACTIVE) == frozenset()


class TestSoloFirst:
    def test_chosen_process_runs_alone_first(self):
        schedule = SoloFirstAdversary(2).schedule(1, ACTIVE)
        assert schedule.blocks()[0] == frozenset({2})
        assert schedule.view_of(2) == frozenset({2})

    def test_absent_process_falls_back_to_sync(self):
        schedule = SoloFirstAdversary(9).schedule(1, ACTIVE)
        assert schedule.blocks() == (ACTIVE,)

    def test_sole_survivor(self):
        schedule = SoloFirstAdversary(1).schedule(1, frozenset({1}))
        assert schedule.blocks() == (frozenset({1}),)


class TestFixedSchedule:
    def test_replays_blocks(self):
        adversary = FixedScheduleAdversary([[[1], [2, 3]], [[3], [1], [2]]])
        first = adversary.schedule(1, ACTIVE)
        assert first.blocks() == (frozenset({1}), frozenset({2, 3}))
        second = adversary.schedule(2, ACTIVE)
        assert second.blocks()[0] == frozenset({3})

    def test_trims_crashed_processes(self):
        adversary = FixedScheduleAdversary([[[1], [2, 3]]])
        schedule = adversary.schedule(1, frozenset({2, 3}))
        assert schedule.blocks() == (frozenset({2, 3}),)

    def test_missing_round_rejected(self):
        adversary = FixedScheduleAdversary([[[1]]])
        with pytest.raises(RuntimeModelError):
            adversary.schedule(2, frozenset({1}))

    def test_uncovered_active_rejected(self):
        adversary = FixedScheduleAdversary([[[1]]])
        with pytest.raises(RuntimeModelError):
            adversary.schedule(1, ACTIVE)


class TestRandomAdversary:
    def test_deterministic_per_seed(self):
        left = RandomAdversary(seed=5)
        right = RandomAdversary(seed=5)
        for round_index in range(1, 5):
            assert left.schedule(round_index, ACTIVE) == right.schedule(
                round_index, ACTIVE
            )

    def test_schedule_covers_active(self):
        adversary = RandomAdversary(seed=1)
        for round_index in range(1, 20):
            schedule = adversary.schedule(round_index, ACTIVE)
            assert schedule.participants == ACTIVE

    def test_never_crashes_everyone(self):
        adversary = RandomAdversary(seed=3, crash_probability=0.9)
        active = ACTIVE
        for round_index in range(1, 50):
            doomed = adversary.crashes(round_index, active)
            active = active - doomed
            assert active
            if len(active) == 1:
                break

    def test_zero_probability_never_crashes(self):
        adversary = RandomAdversary(seed=3, crash_probability=0.0)
        assert adversary.crashes(1, ACTIVE) == frozenset()

    def test_chooses_among_options(self):
        adversary = RandomAdversary(seed=4)
        options = [{"o": 1}, {"o": 2}, {"o": 3}]
        chosen = {
            tuple(
                adversary.choose_assignment(
                    1, FullSyncAdversary().schedule(1, ACTIVE), options
                ).items()
            )
            for _ in range(50)
        }
        assert len(chosen) > 1  # actually randomizes


class TestExhaustiveSequences:
    def test_counts(self):
        assert len(list(all_schedule_sequences([1, 2], 1))) == 3
        assert len(list(all_schedule_sequences([1, 2], 2))) == 9
        assert len(list(all_schedule_sequences([1, 2, 3], 1))) == 13

    def test_sequences_are_block_tuples(self):
        for sequence in all_schedule_sequences([1, 2], 2):
            assert len(sequence) == 2
            for blocks in sequence:
                flattened = sorted(p for block in blocks for p in block)
                assert flattened == [1, 2]

    def test_two_process_two_round_enumeration_is_exhaustive(self):
        # Fubini(2)² = 9 pairwise-distinct sequences, covering the full
        # Cartesian product of the three one-round block schedules.
        sequences = list(all_schedule_sequences([1, 2], 2))
        assert len(sequences) == len(set(sequences)) == 9
        per_round = {
            tuple(frozenset(block) for block in blocks)
            for sequence in sequences
            for blocks in sequence
        }
        solo1 = (frozenset({1}), frozenset({2}))
        solo2 = (frozenset({2}), frozenset({1}))
        sync = (frozenset({1, 2}),)
        assert per_round == {solo1, solo2, sync}
        # Every (round-1, round-2) combination appears exactly once.
        combos = {
            tuple(
                tuple(frozenset(block) for block in blocks)
                for blocks in sequence
            )
            for sequence in sequences
        }
        assert len(combos) == 9

    def test_enumeration_realizes_every_view_profile(self):
        # Driving the executor over all 9 sequences must hit 9 distinct
        # two-round view profiles — the protocol complex has 3² facets
        # for n = 2, so none of them may collapse.
        from fractions import Fraction

        from repro.algorithms import HalvingAA
        from repro.runtime import IteratedExecutor

        inputs = {1: Fraction(0), 2: Fraction(1)}
        profiles = set()
        for sequence in all_schedule_sequences([1, 2], 2):
            adversary = FixedScheduleAdversary(
                [[sorted(block) for block in blocks] for blocks in sequence]
            )
            result = IteratedExecutor().run(
                HalvingAA(Fraction(1, 4)), inputs, adversary
            )
            profiles.add(
                tuple(
                    tuple(sorted(record.views.items()))
                    for record in result.trace
                )
            )
        assert len(profiles) == 9
