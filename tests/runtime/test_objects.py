"""Unit tests for the linearizable runtime objects."""

import pytest

from repro.errors import RuntimeModelError
from repro.models.schedules import schedule_from_blocks
from repro.objects import BinaryConsensusBox, TestAndSetBox
from repro.runtime import LinearizableConsensus, LinearizableTestAndSet


class TestLinearizableTestAndSet:
    def test_first_invoker_wins(self):
        obj = LinearizableTestAndSet()
        assert obj.invoke(3) == 1
        assert obj.invoke(1) == 0
        assert obj.invoke(2) == 0
        assert obj.winner == 3

    def test_reset(self):
        obj = LinearizableTestAndSet()
        obj.invoke(1)
        obj.reset()
        assert obj.winner is None
        assert obj.invoke(2) == 1

    def test_behavior_admissible_for_combinatorial_box(self):
        # Any invocation order is a linearization in which the winner is
        # the first invoker; the combinatorial box must admit the resulting
        # assignment whenever the winner sits in the first block.
        box = TestAndSetBox()
        schedule = schedule_from_blocks([[2, 3], [1]])
        for order in ([2, 3, 1], [3, 2, 1]):
            obj = LinearizableTestAndSet()
            assignment = {p: obj.invoke(p) for p in order}
            admissible = list(box.assignments(schedule, {}))
            assert assignment in admissible


class TestLinearizableConsensus:
    def test_first_proposal_decided(self):
        obj = LinearizableConsensus()
        assert obj.propose(1, "x") == "x"
        assert obj.propose(2, "y") == "x"
        assert obj.decided_value == "x"

    def test_none_proposal_rejected(self):
        with pytest.raises(RuntimeModelError):
            LinearizableConsensus().propose(1, None)

    def test_reset(self):
        obj = LinearizableConsensus()
        obj.propose(1, "x")
        obj.reset()
        assert obj.decided_value is None
        assert obj.propose(2, "y") == "y"

    def test_behavior_admissible_for_combinatorial_box(self):
        box = BinaryConsensusBox()
        schedule = schedule_from_blocks([[1, 2], [3]])
        inputs = {1: 0, 2: 1, 3: 1}
        # First invoker in the first block decides; both orders are
        # admissible behaviors of the adversarial box.
        for first in (1, 2):
            obj = LinearizableConsensus()
            order = [first] + [p for p in (1, 2, 3) if p != first]
            assignment = {p: obj.propose(p, inputs[p]) for p in order}
            admissible = list(box.assignments(schedule, inputs))
            assert assignment in admissible
