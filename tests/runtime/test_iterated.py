"""Unit tests for the iterated executor."""

from fractions import Fraction

import pytest

from repro.algorithms import HalvingAA, TwoProcessConsensusTAS
from repro.errors import RuntimeModelError
from repro.objects import TestAndSetBox
from repro.runtime import (
    FixedScheduleAdversary,
    FullSyncAdversary,
    IteratedExecutor,
    RandomAdversary,
    SoloFirstAdversary,
    IteratedExecutor,
)


def F(num, den=1):
    return Fraction(num, den)


INPUTS = {1: F(0), 2: F(1, 2), 3: F(1)}


class TestBasicExecution:
    def test_synchronous_run_decides_for_everyone(self):
        result = IteratedExecutor().run(HalvingAA(F(1, 4)), INPUTS)
        assert sorted(result.decisions) == [1, 2, 3]
        assert result.crashed == {}

    def test_trace_records_rounds(self):
        algorithm = HalvingAA(F(1, 4))
        result = IteratedExecutor().run(algorithm, INPUTS)
        assert len(result.trace) == algorithm.rounds
        assert result.trace[0].round_index == 1
        assert result.trace[0].blocks == ((1, 2, 3),)

    def test_views_in_trace_match_blocks(self):
        adversary = FixedScheduleAdversary([[[2], [1, 3]], [[1, 2, 3]]])
        result = IteratedExecutor().run(HalvingAA(F(1, 4)), INPUTS, adversary)
        first = result.trace[0]
        assert first.views[2] == (2,)
        assert first.views[1] == (1, 2, 3)

    def test_empty_inputs_rejected(self):
        with pytest.raises(RuntimeModelError):
            IteratedExecutor().run(HalvingAA(F(1, 2)), {})

    def test_surviving(self):
        result = IteratedExecutor().run(HalvingAA(F(1, 2)), INPUTS)
        assert result.surviving() == (1, 2, 3)


class TestCrashes:
    def test_crashed_processes_do_not_decide(self):
        class CrashTwo(FullSyncAdversary):
            def crashes(self, round_index, active):
                return frozenset({2}) if round_index == 1 else frozenset()

        result = IteratedExecutor().run(
            HalvingAA(F(1, 4)), INPUTS, CrashTwo()
        )
        assert 2 not in result.decisions
        assert result.crashed == {2: 1}
        assert sorted(result.decisions) == [1, 3]

    def test_survivors_still_satisfy_agreement(self):
        for seed in range(30):
            adversary = RandomAdversary(seed=seed, crash_probability=0.25)
            result = IteratedExecutor().run(
                HalvingAA(F(1, 4)), INPUTS, adversary
            )
            values = list(result.decisions.values())
            assert values, "wait-freedom: someone must decide"
            assert max(values) - min(values) <= F(1, 4)

    def test_adversary_cannot_kill_everyone(self):
        class KillAll(FullSyncAdversary):
            def crashes(self, round_index, active):
                return active

        with pytest.raises(RuntimeModelError):
            IteratedExecutor().run(HalvingAA(F(1, 2)), INPUTS, KillAll())


class TestScheduleValidation:
    def test_partial_schedule_rejected(self):
        class BadAdversary(FullSyncAdversary):
            def schedule(self, round_index, active):
                from repro.models.schedules import schedule_from_blocks

                return schedule_from_blocks([sorted(active)[:1]])

        with pytest.raises(RuntimeModelError):
            IteratedExecutor().run(HalvingAA(F(1, 2)), INPUTS, BadAdversary())


class TestCrashSemantics:
    """Pin down what 'crashing at round r' means, pre- and mid-round."""

    class _CrashTwoAtTwo(FullSyncAdversary):
        def crashes(self, round_index, active):
            return frozenset({2}) if round_index == 2 else frozenset()

    def test_pre_round_crash_removes_victim_from_the_round(self):
        result = IteratedExecutor().run(
            HalvingAA(F(1, 4)), INPUTS, self._CrashTwoAtTwo()
        )
        second = result.trace[1]
        scheduled = {p for block in second.blocks for p in block}
        assert scheduled == {1, 3}
        assert 2 not in second.views
        assert result.crashed == {2: 2}

    def test_crashed_process_absent_from_all_later_rounds(self):
        result = IteratedExecutor().run(
            HalvingAA(F(1, 8)), INPUTS, self._CrashTwoAtTwo()
        )
        for record in result.trace[1:]:
            assert all(2 not in block for block in record.blocks)
            assert 2 not in record.views

    def test_survivors_decide_without_the_victim(self):
        result = IteratedExecutor().run(
            HalvingAA(F(1, 4)), INPUTS, self._CrashTwoAtTwo()
        )
        assert sorted(result.decisions) == [1, 3]
        values = list(result.decisions.values())
        assert max(values) - min(values) <= F(1, 4)

    def test_first_round_crash_input_never_seen(self):
        class CrashOneImmediately(FullSyncAdversary):
            def crashes(self, round_index, active):
                return frozenset({1}) if round_index == 1 else frozenset()

        result = IteratedExecutor().run(
            HalvingAA(F(1, 4)), INPUTS, CrashOneImmediately()
        )
        # Victim died before writing anything: survivors converge inside
        # the surviving inputs' range.
        values = list(result.decisions.values())
        assert min(values) >= F(1, 2)
        assert result.crashed == {1: 1}


class TestMidRoundCrashSemantics:
    """Mid-round victims write (survivors see them) but never snapshot."""

    class _MidCrashTwo:
        legal = True

        def mid_round_crashes(self, round_index, schedule):
            return frozenset({2}) if round_index == 1 else frozenset()

        def register_array(self, round_index, ids):
            from repro.runtime.registers import RegisterArray

            return RegisterArray(ids)

        def choose_assignment(self, round_index, schedule, options, chosen):
            return chosen

    def test_victim_write_visible_but_victim_has_no_view(self):
        result = IteratedExecutor(injector=self._MidCrashTwo()).run(
            HalvingAA(F(1, 4)), INPUTS, FullSyncAdversary()
        )
        first = result.trace[0]
        assert first.mid_crashed == (2,)
        # The victim never snapshots, so it gets no view...
        assert 2 not in first.views
        # ...but its write is visible to the synchronous survivors.
        assert 2 in first.views[1]
        assert result.crashed == {2: 1}
        assert sorted(result.decisions) == [1, 3]

    def test_injector_may_not_kill_every_participant(self):
        class KillEveryone(self._MidCrashTwo):
            def mid_round_crashes(self, round_index, schedule):
                return schedule.participants

        with pytest.raises(RuntimeModelError):
            IteratedExecutor(injector=KillEveryone()).run(
                HalvingAA(F(1, 4)), INPUTS, FullSyncAdversary()
            )


class TestBoxIntegration:
    def test_box_outputs_recorded_in_trace(self):
        executor = IteratedExecutor(box=TestAndSetBox())
        result = executor.run(
            TwoProcessConsensusTAS(), {1: "a", 2: "b"}, FullSyncAdversary()
        )
        outputs = result.trace[0].box_outputs
        assert sorted(outputs) == [1, 2]
        assert sum(outputs.values()) == 1

    def test_solo_first_process_wins_box(self):
        executor = IteratedExecutor(box=TestAndSetBox())
        result = executor.run(
            TwoProcessConsensusTAS(),
            {1: "a", 2: "b"},
            SoloFirstAdversary(2),
        )
        assert result.trace[0].box_outputs[2] == 1
        # Winner imposes its value.
        assert set(result.decisions.values()) == {"b"}
