"""Unit tests for the snapshot/collect matrix adversaries."""

from fractions import Fraction

import pytest

from repro.algorithms import HalvingAA
from repro.errors import RuntimeModelError
from repro.models.schedules import (
    collect_schedules,
    schedule_from_blocks,
    snapshot_schedules,
)
from repro.runtime import (
    FixedMatrixAdversary,
    IteratedExecutor,
    RandomMatrixAdversary,
)


def F(num, den=1):
    return Fraction(num, den)


ACTIVE = frozenset({1, 2, 3})


class TestRandomMatrixAdversary:
    def test_unknown_kind_rejected(self):
        with pytest.raises(RuntimeModelError):
            RandomMatrixAdversary(kind="quantum")

    def test_snapshot_schedules_are_snapshot(self):
        adversary = RandomMatrixAdversary("snapshot", seed=1)
        for round_index in range(1, 30):
            schedule = adversary.schedule(round_index, ACTIVE)
            assert schedule.is_snapshot()
            assert schedule.participants == ACTIVE

    def test_collect_reaches_non_snapshot_views(self):
        adversary = RandomMatrixAdversary("collect", seed=2)
        kinds = set()
        for round_index in range(1, 200):
            schedule = adversary.schedule(round_index, ACTIVE)
            kinds.add(schedule.is_snapshot())
        assert kinds == {True, False}

    def test_deterministic_per_seed(self):
        left = RandomMatrixAdversary("collect", seed=5)
        right = RandomMatrixAdversary("collect", seed=5)
        for round_index in range(1, 10):
            assert left.schedule(round_index, ACTIVE) == right.schedule(
                round_index, ACTIVE
            )

    def test_pool_sizes_match_models(self):
        adversary = RandomMatrixAdversary("collect", seed=0)
        assert len(adversary._schedules_for(ACTIVE)) == 25
        snap = RandomMatrixAdversary("snapshot", seed=0)
        assert len(snap._schedules_for(ACTIVE)) == 19


class TestFixedMatrixAdversary:
    def test_replays(self):
        schedules = [
            schedule_from_blocks([[1], [2, 3]]),
            schedule_from_blocks([[1, 2, 3]]),
        ]
        adversary = FixedMatrixAdversary(schedules)
        assert adversary.schedule(1, ACTIVE) == schedules[0]
        assert adversary.schedule(2, ACTIVE) == schedules[1]

    def test_missing_round_rejected(self):
        adversary = FixedMatrixAdversary([])
        with pytest.raises(RuntimeModelError):
            adversary.schedule(1, ACTIVE)

    def test_participant_mismatch_rejected(self):
        adversary = FixedMatrixAdversary([schedule_from_blocks([[1, 2]])])
        with pytest.raises(RuntimeModelError):
            adversary.schedule(1, ACTIVE)


class TestHalvingUnderWeakerModels:
    """The empirical finding of E-ablation: Eq. (3) survives weaker models
    at n = 3 — the lower bound proved in IIS transfers a fortiori."""

    @pytest.mark.parametrize("kind", ["snapshot", "collect"])
    def test_halving_correct_under_weaker_schedules(self, kind):
        eps = F(1, 4)
        algorithm = HalvingAA(eps)
        inputs = {1: F(0), 2: F(1, 2), 3: F(1)}
        executor = IteratedExecutor()
        for seed in range(100):
            adversary = RandomMatrixAdversary(kind, seed=seed)
            result = executor.run(algorithm, inputs, adversary)
            values = list(result.decisions.values())
            assert max(values) - min(values) <= eps
            assert min(values) >= F(0) and max(values) <= F(1)

    def test_exhaustive_two_round_collect_sweep(self):
        eps = F(1, 4)
        algorithm = HalvingAA(eps)
        inputs = {1: F(0), 2: F(1, 2), 3: F(1)}
        executor = IteratedExecutor()
        seen = {}
        for schedule in collect_schedules([1, 2, 3]):
            key = tuple(
                (p, tuple(sorted(v)))
                for p, v in sorted(schedule.view_map().items())
            )
            seen.setdefault(key, schedule)
        pool = list(seen.values())
        for first in pool:
            for second in pool:
                result = executor.run(
                    algorithm, inputs, FixedMatrixAdversary([first, second])
                )
                values = list(result.decisions.values())
                assert max(values) - min(values) <= eps

    def test_trace_records_matrix_groups_for_non_is(self):
        eps = F(1, 2)
        algorithm = HalvingAA(eps)
        inputs = {1: F(0), 2: F(1, 2), 3: F(1)}
        # A snapshot-only schedule: {2,3} see everything, 1 sees {1,2}.
        from repro.models.schedules import OneRoundSchedule

        snap_only = OneRoundSchedule(
            groups=(frozenset({2, 3}), frozenset({1})),
            views=(frozenset({1, 2, 3}), frozenset({1, 2})),
        )
        result = IteratedExecutor().run(
            algorithm, inputs, FixedMatrixAdversary([snap_only])
        )
        assert result.trace[0].views[1] == (1, 2)
        assert result.trace[0].views[2] == (1, 2, 3)
