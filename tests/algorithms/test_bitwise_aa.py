"""Tests for bitwise approximate agreement via binary consensus."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BitwiseAA
from repro.errors import RuntimeModelError
from repro.objects import BinaryConsensusBox
from repro.runtime import (
    FixedScheduleAdversary,
    IteratedExecutor,
    RandomAdversary,
    all_schedule_sequences,
)


def F(num, den=1):
    return Fraction(num, den)


def check_aa(result, inputs, epsilon):
    values = list(result.decisions.values())
    lo, hi = min(inputs.values()), max(inputs.values())
    assert max(values) - min(values) <= epsilon
    assert all(lo <= v <= hi for v in values)


class _PickOption(FixedScheduleAdversary):
    def __init__(self, blocks, option_index):
        super().__init__(blocks)
        self._option_index = option_index

    def choose_assignment(self, round_index, schedule, options):
        return options[min(self._option_index, len(options) - 1)]


class TestBitwiseAA:
    def test_round_count(self):
        assert BitwiseAA(F(1, 2)).rounds == 1
        assert BitwiseAA(F(1, 4)).rounds == 2
        assert BitwiseAA(F(1, 8)).rounds == 3

    def test_invalid_epsilon(self):
        with pytest.raises(RuntimeModelError):
            BitwiseAA(0)

    def test_inputs_outside_unit_interval_rejected(self):
        algorithm = BitwiseAA(F(1, 2))
        with pytest.raises(RuntimeModelError):
            IteratedExecutor(box=BinaryConsensusBox()).run(
                algorithm, {1: F(3, 2)}
            )

    def test_requires_box(self):
        with pytest.raises(RuntimeModelError):
            IteratedExecutor().run(BitwiseAA(F(1, 2)), {1: F(0), 2: F(1)})

    def test_exhaustive_three_processes_quarter(self):
        eps = F(1, 4)
        algorithm = BitwiseAA(eps)
        executor = IteratedExecutor(box=BinaryConsensusBox())
        inputs = {1: F(0), 2: F(3, 8), 3: F(1)}
        for sequence in all_schedule_sequences([1, 2, 3], algorithm.rounds):
            for option in range(2):
                result = executor.run(
                    algorithm, inputs, _PickOption(sequence, option)
                )
                check_aa(result, inputs, eps)

    def test_edge_value_one_handled(self):
        # The dyadic-window invariant must survive the value 1 (all of
        # whose fractional bits are 0 in the naive encoding).
        eps = F(1, 4)
        algorithm = BitwiseAA(eps)
        executor = IteratedExecutor(box=BinaryConsensusBox())
        inputs = {1: F(1), 2: F(1), 3: F(0)}
        for sequence in all_schedule_sequences([1, 2, 3], algorithm.rounds):
            for option in range(2):
                result = executor.run(
                    algorithm, inputs, _PickOption(sequence, option)
                )
                check_aa(result, inputs, 1)  # range + agreement window
                values = list(result.decisions.values())
                assert max(values) - min(values) <= eps

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_random_adversary_with_crashes(self, seed):
        eps = F(1, 8)
        algorithm = BitwiseAA(eps)
        executor = IteratedExecutor(box=BinaryConsensusBox())
        inputs = {1: F(0), 2: F(5, 16), 3: F(11, 16), 4: F(1)}
        adversary = RandomAdversary(seed=seed, crash_probability=0.2)
        result = executor.run(algorithm, inputs, adversary)
        check_aa(result, inputs, eps)

    def test_outputs_are_input_values(self):
        # The algorithm never synthesizes values: every decision is some
        # participant's input.
        eps = F(1, 4)
        algorithm = BitwiseAA(eps)
        executor = IteratedExecutor(box=BinaryConsensusBox())
        inputs = {1: F(1, 8), 2: F(5, 8), 3: F(7, 8)}
        for sequence in all_schedule_sequences([1, 2, 3], algorithm.rounds):
            result = executor.run(
                algorithm, inputs, _PickOption(sequence, 0)
            )
            assert set(result.decisions.values()) <= set(inputs.values())

    def test_value_dependent_box_inputs(self):
        # Unlike ConsensusViaBinaryConsensus, the call depends on the
        # process's value — the family outside Theorem 4's hypothesis.
        algorithm = BitwiseAA(F(1, 2))
        low = algorithm.initial_state(1, F(0))
        high = algorithm.initial_state(1, F(1))
        assert algorithm.box_input(1, low, 1) == 0
        assert algorithm.box_input(1, high, 1) == 1
