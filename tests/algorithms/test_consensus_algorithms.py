"""Tests for the object-augmented consensus algorithms."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ConsensusViaBinaryConsensus, TwoProcessConsensusTAS
from repro.errors import RuntimeModelError
from repro.objects import BinaryConsensusBox, TestAndSetBox
from repro.runtime import (
    FixedScheduleAdversary,
    IteratedExecutor,
    RandomAdversary,
    all_schedule_sequences,
)


def check_consensus(result, inputs):
    values = set(result.decisions.values())
    assert len(values) == 1
    assert values <= set(inputs.values())


class _PickOption(FixedScheduleAdversary):
    """Fixed schedule + fixed box-option index, for exhaustive sweeps."""

    def __init__(self, blocks, option_index):
        super().__init__(blocks)
        self._option_index = option_index

    def choose_assignment(self, round_index, schedule, options):
        return options[min(self._option_index, len(options) - 1)]


class TestTwoProcessConsensusTAS:
    def test_single_round(self):
        assert TwoProcessConsensusTAS.rounds == 1

    def test_exhaustive_schedules_and_winners(self):
        executor = IteratedExecutor(box=TestAndSetBox())
        for inputs in ({1: "a", 2: "b"}, {1: 0, 2: 1}, {1: "s", 2: "s"}):
            for sequence in all_schedule_sequences([1, 2], 1):
                for option in range(2):
                    result = executor.run(
                        TwoProcessConsensusTAS(),
                        inputs,
                        _PickOption(sequence, option),
                    )
                    check_consensus(result, inputs)

    def test_winner_decides_own_input(self):
        executor = IteratedExecutor(box=TestAndSetBox())
        result = executor.run(
            TwoProcessConsensusTAS(),
            {1: "mine", 2: "theirs"},
            _PickOption([[[1, 2]]], 0),  # winner = process 1
        )
        assert set(result.decisions.values()) == {"mine"}

    def test_three_processes_rejected(self):
        executor = IteratedExecutor(box=TestAndSetBox())
        with pytest.raises(RuntimeModelError):
            executor.run(
                TwoProcessConsensusTAS(), {1: "a", 2: "b", 3: "c"}
            )

    def test_solo_execution_decides_own_input(self):
        executor = IteratedExecutor(box=TestAndSetBox())
        result = executor.run(TwoProcessConsensusTAS(), {2: "v"})
        assert result.decisions == {2: "v"}


class TestConsensusViaBinaryConsensus:
    def test_round_counts(self):
        assert ConsensusViaBinaryConsensus(2).rounds == 1
        assert ConsensusViaBinaryConsensus(3).rounds == 2
        assert ConsensusViaBinaryConsensus(4).rounds == 2
        assert ConsensusViaBinaryConsensus(5).rounds == 3

    def test_invalid_n(self):
        with pytest.raises(RuntimeModelError):
            ConsensusViaBinaryConsensus(1)

    def test_exhaustive_three_processes(self):
        algorithm = ConsensusViaBinaryConsensus(3)
        executor = IteratedExecutor(box=BinaryConsensusBox())
        inputs = {1: "x", 2: "y", 3: "z"}
        for sequence in all_schedule_sequences([1, 2, 3], algorithm.rounds):
            for option in range(2):
                result = executor.run(
                    algorithm, inputs, _PickOption(sequence, option)
                )
                check_consensus(result, inputs)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_adversary_with_crashes_n4(self, seed):
        algorithm = ConsensusViaBinaryConsensus(4)
        executor = IteratedExecutor(box=BinaryConsensusBox())
        inputs = {1: "a", 2: "b", 3: "c", 4: "d"}
        adversary = RandomAdversary(seed=seed, crash_probability=0.15)
        result = executor.run(algorithm, inputs, adversary)
        check_consensus(result, inputs)

    def test_partial_participation(self):
        algorithm = ConsensusViaBinaryConsensus(4)
        executor = IteratedExecutor(box=BinaryConsensusBox())
        inputs = {2: "b", 4: "d"}
        result = executor.run(algorithm, inputs)
        check_consensus(result, inputs)

    def test_box_inputs_are_id_bits(self):
        # Theorem 4's hypothesis: the first-round call depends only on the
        # process identifier.
        algorithm = ConsensusViaBinaryConsensus(4)
        state1 = algorithm.initial_state(1, "whatever")
        state4 = algorithm.initial_state(4, "other")
        assert algorithm.box_input(1, state1, 1) == 0  # id 0 = 0b00
        assert algorithm.box_input(4, state4, 1) == 1  # id 3 = 0b11

    def test_requires_box(self):
        algorithm = ConsensusViaBinaryConsensus(2)
        with pytest.raises(RuntimeModelError):
            IteratedExecutor().run(algorithm, {1: "a", 2: "b"})
