"""Exhaustive and randomized tests for the AA algorithms (no objects)."""

from fractions import Fraction
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import HalvingAA, TwoProcessThirdsAA
from repro.errors import RuntimeModelError
from repro.runtime import (
    FixedScheduleAdversary,
    IteratedExecutor,
    RandomAdversary,
    all_schedule_sequences,
)


def F(num, den=1):
    return Fraction(num, den)


def run_all_schedules(algorithm, inputs):
    executor = IteratedExecutor()
    for sequence in all_schedule_sequences(sorted(inputs), algorithm.rounds):
        yield executor.run(algorithm, inputs, FixedScheduleAdversary(sequence))


def check_aa(result, inputs, epsilon):
    values = list(result.decisions.values())
    lo, hi = min(inputs.values()), max(inputs.values())
    assert max(values) - min(values) <= epsilon
    assert all(lo <= v <= hi for v in values)


class TestHalvingAA:
    def test_round_count_matches_bound(self):
        assert HalvingAA(F(1, 2)).rounds == 1
        assert HalvingAA(F(1, 4)).rounds == 2
        assert HalvingAA(F(1, 8)).rounds == 3
        assert HalvingAA(F(1, 5)).rounds == 3

    def test_round_epsilon_halves(self):
        algorithm = HalvingAA(F(1, 8))
        assert algorithm.round_epsilon(1) == F(1, 2)
        assert algorithm.round_epsilon(2) == F(1, 4)
        assert algorithm.round_epsilon(3) == F(1, 8)

    def test_invalid_epsilon(self):
        with pytest.raises(RuntimeModelError):
            HalvingAA(0)
        with pytest.raises(RuntimeModelError):
            HalvingAA(2)

    def test_exhaustive_three_processes_quarter(self):
        eps = F(1, 4)
        algorithm = HalvingAA(eps)
        inputs = {1: F(0), 2: F(1, 2), 3: F(1)}
        for result in run_all_schedules(algorithm, inputs):
            check_aa(result, inputs, eps)

    def test_exhaustive_all_grid_inputs_half(self):
        eps = F(1, 2)
        algorithm = HalvingAA(eps)
        values = [F(0), F(1, 2), F(1)]
        for combo in product(values, repeat=3):
            inputs = dict(zip([1, 2, 3], combo))
            for result in run_all_schedules(algorithm, inputs):
                check_aa(result, inputs, eps)

    def test_outputs_stay_on_grid(self):
        eps = F(1, 4)
        algorithm = HalvingAA(eps)
        inputs = {1: F(0), 2: F(3, 4), 3: F(1)}
        for result in run_all_schedules(algorithm, inputs):
            for value in result.decisions.values():
                assert (value * 4).denominator == 1

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_random_adversary_with_crashes(self, seed):
        eps = F(1, 8)
        algorithm = HalvingAA(eps)
        inputs = {1: F(0), 2: F(3, 8), 3: F(5, 8), 4: F(1)}
        adversary = RandomAdversary(seed=seed, crash_probability=0.2)
        result = IteratedExecutor().run(algorithm, inputs, adversary)
        check_aa(result, inputs, eps)

    def test_extra_rounds_harmless(self):
        eps = F(1, 2)
        algorithm = HalvingAA(eps, rounds=3)
        inputs = {1: F(0), 2: F(1), 3: F(1)}
        result = IteratedExecutor().run(algorithm, inputs)
        check_aa(result, inputs, eps)


class TestTwoProcessThirdsAA:
    def test_round_count_matches_bound(self):
        assert TwoProcessThirdsAA(F(1, 3)).rounds == 1
        assert TwoProcessThirdsAA(F(1, 9)).rounds == 2
        assert TwoProcessThirdsAA(F(1, 4)).rounds == 2

    def test_exhaustive_grid_ninths(self):
        eps = F(1, 9)
        algorithm = TwoProcessThirdsAA(eps)
        values = [F(k, 9) for k in range(10)]
        for x1, x2 in product(values, repeat=2):
            inputs = {1: x1, 2: x2}
            for result in run_all_schedules(algorithm, inputs):
                check_aa(result, inputs, eps)

    def test_faster_than_halving_for_two_processes(self):
        # The crossover of Corollary 3: base 3 beats base 2.
        assert TwoProcessThirdsAA(F(1, 9)).rounds == 2
        assert HalvingAA(F(1, 9)).rounds == 4

    def test_three_processes_rejected(self):
        algorithm = TwoProcessThirdsAA(F(1, 3))
        inputs = {1: F(0), 2: F(1, 3), 3: F(1)}
        with pytest.raises(RuntimeModelError):
            IteratedExecutor().run(algorithm, inputs)

    def test_solo_process_keeps_value(self):
        algorithm = TwoProcessThirdsAA(F(1, 3))
        result = IteratedExecutor().run(algorithm, {2: F(1, 3)})
        assert result.decisions == {2: F(1, 3)}

    def test_tie_values_agree_immediately(self):
        algorithm = TwoProcessThirdsAA(F(1, 3))
        inputs = {1: F(2, 3), 2: F(2, 3)}
        for result in run_all_schedules(algorithm, inputs):
            assert set(result.decisions.values()) == {F(2, 3)}
