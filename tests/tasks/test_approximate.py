"""Unit tests for (liberal) ε-approximate agreement on the rational grid."""

from fractions import Fraction

import pytest

from repro.errors import TaskSpecificationError
from repro.tasks import (
    approximate_agreement_task,
    grid,
    liberal_approximate_agreement_task,
)
from repro.tasks.inputs import input_simplex


def F(num, den=1):
    return Fraction(num, den)


class TestGrid:
    def test_grid_values(self):
        assert grid(4) == [F(0), F(1, 4), F(1, 2), F(3, 4), F(1)]

    def test_grid_resolution_one(self):
        assert grid(1) == [F(0), F(1)]

    def test_invalid_resolution(self):
        with pytest.raises(TaskSpecificationError):
            grid(0)


class TestEpsilonValidation:
    def test_epsilon_must_divide_grid(self):
        with pytest.raises(TaskSpecificationError):
            approximate_agreement_task([1, 2], F(1, 3), 4)

    def test_epsilon_must_be_positive(self):
        with pytest.raises(TaskSpecificationError):
            approximate_agreement_task([1, 2], 0, 4)

    def test_epsilon_accepts_strings_and_ints(self):
        task = approximate_agreement_task([1, 2], "1/4", 4)
        assert task.epsilon == F(1, 4)
        assert approximate_agreement_task([1, 2], 1, 4).epsilon == F(1)


class TestStandardTask:
    def test_outputs_within_epsilon(self):
        task = approximate_agreement_task([1, 2, 3], F(1, 4), 4)
        sigma = input_simplex({1: F(0), 2: F(1, 2), 3: F(1)})
        for facet in task.delta(sigma).facets:
            values = [v.value for v in facet.vertices]
            assert max(values) - min(values) <= F(1, 4)

    def test_outputs_within_range(self):
        task = approximate_agreement_task([1, 2], F(1, 4), 4)
        sigma = input_simplex({1: F(1, 4), 2: F(3, 4)})
        for facet in task.delta(sigma).facets:
            for vertex in facet.vertices:
                assert F(1, 4) <= vertex.value <= F(3, 4)

    def test_solo_keeps_input(self):
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        sigma = input_simplex({1: F(1, 2)})
        assert task.delta(sigma).facets == frozenset({sigma})

    def test_uniform_inputs_force_that_value(self):
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        sigma = input_simplex({1: F(1, 2), 2: F(1, 2)})
        assert task.delta(sigma).facets == frozenset({sigma})

    def test_delta_cached_by_window(self):
        task = approximate_agreement_task([1, 2], F(1, 4), 4)
        left = task.delta(input_simplex({1: F(0), 2: F(1, 2)}))
        right = task.delta(input_simplex({1: F(1, 2), 2: F(0)}))
        assert left is right  # same (ids, min, max) key

    def test_validates(self):
        approximate_agreement_task([1, 2], F(1, 2), 2).validate()

    def test_epsilon_one_makes_everything_legal(self):
        task = approximate_agreement_task([1, 2], 1, 2)
        sigma = input_simplex({1: F(0), 2: F(1)})
        # Any grid pair within range is fine when ε = 1.
        assert len(task.delta(sigma).facets) == 9


class TestLiberalTask:
    def test_two_participants_unconstrained_distance(self):
        task = liberal_approximate_agreement_task([1, 2, 3], F(1, 4), 4)
        sigma = input_simplex({1: F(0), 2: F(1)})
        legal = task.delta(sigma)
        assert input_simplex({1: F(0), 2: F(1)}) in legal

    def test_two_participants_range_still_enforced(self):
        task = liberal_approximate_agreement_task([1, 2, 3], F(1, 4), 4)
        sigma = input_simplex({1: F(1, 4), 2: F(1, 2)})
        legal = task.delta(sigma)
        assert input_simplex({1: F(0), 2: F(1, 2)}) not in legal

    def test_three_participants_constrained(self):
        task = liberal_approximate_agreement_task([1, 2, 3], F(1, 4), 4)
        sigma = input_simplex({1: F(0), 2: F(1, 2), 3: F(1)})
        for facet in task.delta(sigma).facets:
            values = [v.value for v in facet.vertices]
            assert max(values) - min(values) <= F(1, 4)

    def test_output_complex_contains_wide_edges(self):
        task = liberal_approximate_agreement_task([1, 2, 3], F(1, 4), 4)
        assert input_simplex({1: F(0), 3: F(1)}) in task.output_complex

    def test_standard_more_constrained_than_liberal(self):
        strict = approximate_agreement_task([1, 2, 3], F(1, 4), 4)
        liberal = liberal_approximate_agreement_task([1, 2, 3], F(1, 4), 4)
        for sigma in [
            input_simplex({1: F(0), 2: F(1)}),
            input_simplex({1: F(0), 2: F(1, 2), 3: F(1)}),
        ]:
            assert (
                strict.delta(sigma).simplices
                <= liberal.delta(sigma).simplices
            )

    def test_validates(self):
        liberal_approximate_agreement_task([1, 2, 3], F(1, 2), 2).validate()

    def test_values_are_exact_fractions(self):
        task = liberal_approximate_agreement_task([1, 2], F(1, 4), 4)
        sigma = input_simplex({1: F(0), 2: F(1)})
        for vertex in task.delta(sigma).vertices:
            assert isinstance(vertex.value, Fraction)
