"""Unit tests for the consensus task family."""


from repro.tasks import (
    binary_consensus_task,
    multivalued_consensus_task,
    relaxed_consensus_task,
)
from repro.tasks.inputs import input_simplex


class TestBinaryConsensus:
    def test_output_complex_has_two_facets(self):
        task = binary_consensus_task([1, 2, 3])
        assert len(task.output_complex.facets) == 2

    def test_mixed_inputs_allow_both_decisions(self):
        task = binary_consensus_task([1, 2, 3])
        sigma = input_simplex({1: 0, 2: 1, 3: 0})
        facets = task.delta(sigma).facets
        assert facets == frozenset(
            {
                input_simplex({1: 0, 2: 0, 3: 0}),
                input_simplex({1: 1, 2: 1, 3: 1}),
            }
        )

    def test_uniform_inputs_force_decision(self):
        task = binary_consensus_task([1, 2, 3])
        sigma = input_simplex({1: 1, 2: 1, 3: 1})
        assert task.delta(sigma).facets == frozenset({sigma})

    def test_solo_process_keeps_input(self):
        task = binary_consensus_task([1, 2])
        sigma = input_simplex({2: 0})
        assert task.delta(sigma).facets == frozenset({sigma})

    def test_validates(self):
        binary_consensus_task([1, 2, 3]).validate()


class TestMultivaluedConsensus:
    def test_decisions_are_participant_inputs(self):
        task = multivalued_consensus_task([1, 2], ["x", "y", "z"])
        sigma = input_simplex({1: "x", 2: "z"})
        decided = {
            facet.value_of(1) for facet in task.delta(sigma).facets
        }
        assert decided == {"x", "z"}

    def test_agreement_in_every_output(self):
        task = multivalued_consensus_task([1, 2, 3], ["x", "y"])
        for sigma in task.input_complex.simplices_of_dim(2):
            for facet in task.delta(sigma).facets:
                values = {v.value for v in facet.vertices}
                assert len(values) == 1

    def test_validates(self):
        multivalued_consensus_task([1, 2], ["x", "y", "z"]).validate()


class TestRelaxedConsensus:
    def test_three_participants_must_agree(self):
        task = relaxed_consensus_task([1, 2, 3])
        sigma = input_simplex({1: 0, 2: 1, 3: 1})
        for facet in task.delta(sigma).facets:
            assert len({v.value for v in facet.vertices}) == 1

    def test_two_participants_may_disagree(self):
        task = relaxed_consensus_task([1, 2, 3])
        sigma = input_simplex({1: 0, 2: 1})
        legal = task.delta(sigma).facets
        assert input_simplex({1: 0, 2: 1}) in legal
        assert input_simplex({1: 1, 2: 0}) in legal
        assert input_simplex({1: 0, 2: 0}) in legal
        assert len(legal) == 4

    def test_validity_still_enforced(self):
        task = relaxed_consensus_task([1, 2, 3])
        sigma = input_simplex({1: 0, 2: 0})
        # Both inputs are 0: outputs must be 0 even for two participants.
        assert task.delta(sigma).facets == frozenset(
            {input_simplex({1: 0, 2: 0})}
        )

    def test_solo_keeps_input(self):
        task = relaxed_consensus_task([1, 2, 3])
        sigma = input_simplex({3: 1})
        assert task.delta(sigma).facets == frozenset({sigma})

    def test_output_complex_contains_disagreeing_edges(self):
        task = relaxed_consensus_task([1, 2, 3])
        assert input_simplex({1: 0, 3: 1}) in task.output_complex

    def test_output_complex_has_no_disagreeing_triangles(self):
        task = relaxed_consensus_task([1, 2, 3])
        assert input_simplex({1: 0, 2: 1, 3: 1}) not in task.output_complex

    def test_any_consensus_output_is_relaxed_legal(self):
        strict = binary_consensus_task([1, 2, 3])
        relaxed = relaxed_consensus_task([1, 2, 3])
        for sigma in strict.input_complex:
            assert (
                strict.delta(sigma).simplices
                <= relaxed.delta(sigma).simplices
            )

    def test_validates(self):
        relaxed_consensus_task([1, 2, 3]).validate()
