"""Unit tests for k-set agreement."""

import pytest

from repro.errors import TaskSpecificationError
from repro.tasks import binary_consensus_task, set_agreement_task
from repro.tasks.inputs import input_simplex


class TestSetAgreement:
    def test_k1_equals_consensus_specification(self):
        kset = set_agreement_task([1, 2], [0, 1], 1)
        consensus = binary_consensus_task([1, 2])
        for sigma in consensus.input_complex:
            assert (
                kset.delta(sigma).simplices
                == consensus.delta(sigma).simplices
            )

    def test_at_most_k_distinct_outputs(self):
        task = set_agreement_task([1, 2, 3], ["a", "b", "c"], 2)
        sigma = input_simplex({1: "a", 2: "b", 3: "c"})
        for facet in task.delta(sigma).facets:
            assert len({v.value for v in facet.vertices}) <= 2

    def test_outputs_are_inputs(self):
        task = set_agreement_task([1, 2, 3], ["a", "b", "c"], 2)
        sigma = input_simplex({1: "a", 2: "a", 3: "b"})
        for facet in task.delta(sigma).facets:
            assert {v.value for v in facet.vertices} <= {"a", "b"}

    def test_k_equal_n_still_restricts_to_inputs(self):
        task = set_agreement_task([1, 2], ["a", "b"], 2)
        sigma = input_simplex({1: "a", 2: "a"})
        assert task.delta(sigma).facets == frozenset(
            {input_simplex({1: "a", 2: "a"})}
        )

    def test_invalid_k(self):
        with pytest.raises(TaskSpecificationError):
            set_agreement_task([1, 2], [0, 1], 0)

    def test_output_complex_excludes_too_diverse(self):
        task = set_agreement_task([1, 2, 3], ["a", "b", "c"], 2)
        assert (
            input_simplex({1: "a", 2: "b", 3: "c"})
            not in task.output_complex
        )

    def test_validates(self):
        set_agreement_task([1, 2, 3], ["a", "b"], 2).validate()
