"""Unit tests for the renaming task."""

import pytest

from repro.core import ClosureComputer, is_solvable
from repro.errors import TaskSpecificationError
from repro.tasks import renaming_task
from repro.tasks.inputs import input_simplex


class TestSpecification:
    def test_outputs_are_distinct(self):
        task = renaming_task([1, 2, 3], 3)
        sigma = input_simplex({1: "token", 2: "token", 3: "token"})
        for facet in task.delta(sigma).facets:
            names = [v.value for v in facet.vertices]
            assert len(set(names)) == len(names)

    def test_output_count(self):
        task = renaming_task([1, 2], 3)
        sigma = input_simplex({1: "token", 2: "token"})
        assert len(task.delta(sigma).facets) == 6  # 3·2 injections

    def test_partial_participation(self):
        task = renaming_task([1, 2, 3], 3)
        sigma = input_simplex({2: "token"})
        assert len(task.delta(sigma).facets) == 3

    def test_too_small_namespace_empties_delta(self):
        task = renaming_task([1, 2, 3], 2)
        sigma = input_simplex({1: "token", 2: "token", 3: "token"})
        assert task.delta(sigma).is_empty()

    def test_invalid_namespace(self):
        with pytest.raises(TaskSpecificationError):
            renaming_task([1], 0)

    def test_validates(self):
        renaming_task([1, 2], 3).validate()


class TestSolvability:
    def test_id_dependent_renaming_is_zero_round(self, iis):
        # Without the index-independence (symmetry) requirement, renaming
        # with M ≥ n names is trivially 0-round solvable: process i takes
        # the i-th name.  The classical 2n−1 lower bound is about
        # *symmetric* algorithms — a restriction the task triple itself
        # cannot express, which is precisely why renaming needs different
        # machinery than the closure technique (cf. the paper's related
        # work on step complexity of renaming).
        for n, M in [(2, 2), (2, 3), (3, 3)]:
            task = renaming_task(range(1, n + 1), M)
            assert is_solvable(task, iis, 0)

    def test_insufficient_namespace_unsolvable(self, iis):
        task = renaming_task([1, 2, 3], 2)
        sigma = input_simplex({1: "token", 2: "token", 3: "token"})
        simplices = [sigma] + list(sigma.proper_faces())
        assert not is_solvable(task, iis, 0, input_simplices=simplices)
        assert not is_solvable(task, iis, 1, input_simplices=simplices)

    def test_closure_of_unsolvable_instance_stays_empty(self, iis):
        # Δ(σ) = ∅ for the full simplex ⟹ Δ'(σ) = ∅ too (no τ can even be
        # drawn from V(Δ(σ))): the closure cannot manufacture solvability.
        task = renaming_task([1, 2, 3], 2)
        computer = ClosureComputer(task, iis)
        sigma = input_simplex({1: "token", 2: "token", 3: "token"})
        assert computer.legal_outputs(sigma) == []
