"""Unit tests for the Task triple and its well-formedness checks."""

import pytest

from repro.errors import TaskSpecificationError
from repro.tasks import Task, binary_consensus_task
from repro.tasks.inputs import binary_input_complex, full_input_complex, input_simplex
from repro.topology import Simplex, SimplicialComplex


class TestInputBuilders:
    def test_full_input_complex_facet_count(self):
        complex_ = full_input_complex([1, 2], ["a", "b", "c"])
        assert len(complex_.facets) == 9
        assert complex_.dim == 1

    def test_binary_input_complex(self):
        complex_ = binary_input_complex([1, 2, 3])
        assert len(complex_.facets) == 8
        assert Simplex([(1, 0), (2, 1)]) in complex_

    def test_input_simplex(self):
        sigma = input_simplex({1: 0, 2: 1})
        assert sigma.value_of(2) == 1

    def test_empty_ids_rejected(self):
        with pytest.raises(TaskSpecificationError):
            full_input_complex([], [0])

    def test_empty_values_rejected(self):
        with pytest.raises(TaskSpecificationError):
            full_input_complex([1], [])


class TestTaskBasics:
    def test_delta_memoized(self):
        calls = []

        def delta(sigma):
            calls.append(sigma)
            return SimplicialComplex.from_simplex(sigma)

        task = Task(
            "identity",
            binary_input_complex([1, 2]),
            binary_input_complex([1, 2]),
            delta,
        )
        sigma = input_simplex({1: 0, 2: 1})
        task.delta(sigma)
        task.delta(sigma)
        assert len(calls) == 1

    def test_is_legal_output(self):
        task = binary_consensus_task([1, 2])
        sigma = input_simplex({1: 0, 2: 1})
        assert task.is_legal_output(sigma, input_simplex({1: 0, 2: 0}))
        assert not task.is_legal_output(sigma, input_simplex({1: 0, 2: 1}))
        # Color mismatch is never legal.
        assert not task.is_legal_output(sigma, input_simplex({1: 0}))

    def test_validate_passes_for_consensus(self):
        binary_consensus_task([1, 2, 3]).validate()

    def test_validate_rejects_color_leak(self):
        def delta(sigma):
            return SimplicialComplex.from_simplex(Simplex([(99, 0)]))

        task = Task(
            "bad",
            binary_input_complex([1]),
            SimplicialComplex.from_simplex(Simplex([(99, 0)])),
            delta,
        )
        with pytest.raises(TaskSpecificationError):
            task.validate()

    def test_validate_rejects_output_outside_complex(self):
        def delta(sigma):
            return SimplicialComplex.from_simplex(
                Simplex((i, "stray") for i in sorted(sigma.ids))
            )

        task = Task(
            "bad",
            binary_input_complex([1]),
            binary_input_complex([1]),
            delta,
        )
        with pytest.raises(TaskSpecificationError):
            task.validate()


class TestDerivedTasks:
    def test_restricted_to_subcomplex(self):
        task = binary_consensus_task([1, 2, 3])
        sub = SimplicialComplex.from_simplex(input_simplex({1: 0, 2: 1}))
        restricted = task.restricted_to(sub)
        assert restricted.input_complex == sub
        # Same Δ on surviving simplices.
        sigma = input_simplex({1: 0, 2: 1})
        assert restricted.delta(sigma) == task.delta(sigma)

    def test_restricted_to_non_subcomplex_rejected(self):
        task = binary_consensus_task([1, 2])
        foreign = SimplicialComplex.from_simplex(input_simplex({1: "z"}))
        with pytest.raises(TaskSpecificationError):
            task.restricted_to(foreign)

    def test_with_name(self):
        task = binary_consensus_task([1, 2]).with_name("renamed")
        assert task.name == "renamed"

    def test_same_specification_as_self(self):
        left = binary_consensus_task([1, 2])
        right = binary_consensus_task([1, 2])
        assert left.same_specification_as(right)

    def test_specification_differs_across_sizes(self):
        left = binary_consensus_task([1, 2])
        right = binary_consensus_task([1, 2, 3])
        assert not left.same_specification_as(right)

    def test_specification_table(self):
        task = binary_consensus_task([1, 2])
        table = task.specification_table()
        assert set(table) == set(task.input_complex.simplices)

    def test_monotonicity_of_consensus(self):
        # Consensus Δ is a carrier map: faces' outputs are contained.
        assert binary_consensus_task([1, 2]).is_monotone()
