"""Tests for the chaos campaign runner (budgets, isolation, determinism)."""

from fractions import Fraction

import pytest

from repro.errors import ReproError
from repro.faults.campaign import (
    CampaignConfig,
    CELLS,
    derive_seed,
    replay_trace,
    report_to_json,
    render_report,
    run_campaign,
)
from repro.faults.oracles import (
    DECIDED_OK,
    HARNESS_FAULT_DETECTED,
    HUNG,
    VIOLATION,
)


class TestConfigValidation:
    def test_unknown_cell_rejected(self):
        with pytest.raises(ReproError):
            run_campaign(CampaignConfig(cell="nonsense"))

    def test_unsupported_model_rejected(self):
        # Black-box cells need temporal blocks, so consensus is IIS-only.
        with pytest.raises(ReproError):
            CampaignConfig(cell="consensus", model="snapshot").validate()

    def test_t_must_leave_a_survivor(self):
        with pytest.raises(ReproError):
            CampaignConfig(cell="aa", n=3, t=3).validate()

    def test_illegal_requires_allow_flag(self):
        with pytest.raises(ReproError):
            CampaignConfig(cell="aa", illegal="lost-write").validate()

    def test_two_process_cell_bounds_n(self):
        with pytest.raises(ReproError):
            CampaignConfig(cell="aa2", n=3).validate()


class TestCleanCampaigns:
    def test_aa_iis_all_decide_ok(self):
        report = run_campaign(
            CampaignConfig(cell="aa", model="iis", n=3, t=1,
                           executions=150, seed=0)
        )
        assert report.counts[DECIDED_OK] == 150
        assert report.clean
        assert not report.incidents

    def test_consensus_with_box_all_decide_ok(self):
        report = run_campaign(
            CampaignConfig(cell="consensus", model="iis", n=3, t=1,
                           executions=100, seed=0)
        )
        assert report.counts[DECIDED_OK] == 100
        assert report.clean

    @pytest.mark.parametrize("model", ["snapshot", "collect"])
    def test_matrix_models_supported(self, model):
        report = run_campaign(
            CampaignConfig(cell="aa", model=model, n=3, t=1,
                           executions=60, seed=0)
        )
        assert report.counts[DECIDED_OK] == 60

    def test_campaign_is_deterministic(self):
        config = CampaignConfig(cell="aa", model="iis", n=3, t=1,
                                executions=80, seed=5)
        first = report_to_json(run_campaign(config))
        second = report_to_json(run_campaign(config))
        assert first == second

    def test_different_seeds_differ(self):
        # Not a property we *need*, but seeds failing to thread through
        # would silently collapse the campaign onto one execution.
        def inputs_of(seed):
            report = run_campaign(
                CampaignConfig(cell="aa-broken", executions=60, seed=seed,
                               t=0)
            )
            return tuple(
                outcome.index for outcome in report.violations
            )

        assert inputs_of(0) != inputs_of(1) or derive_seed(
            0, 0
        ) != derive_seed(1, 0)


class TestBrokenFixtures:
    def test_short_aa_violates_epsilon(self):
        report = run_campaign(
            CampaignConfig(cell="aa-broken", executions=200, seed=0, t=0)
        )
        assert report.counts[VIOLATION] > 0
        first = report.violations[0]
        assert first.property == "epsilon-agreement"
        assert first.trace is not None

    def test_iis_consensus_violates_agreement(self):
        # Corollary 1: consensus is impossible in plain IIS, so random
        # schedules must expose disagreement.
        report = run_campaign(
            CampaignConfig(cell="consensus-broken", executions=200,
                           seed=0, t=0)
        )
        assert report.counts[VIOLATION] > 0
        assert report.violations[0].property == "agreement"

    def test_violation_trace_replays_to_same_verdict(self):
        report = run_campaign(
            CampaignConfig(cell="consensus-broken", executions=200,
                           seed=0, t=0)
        )
        trace = report.violations[0].trace
        classification, violation = replay_trace(trace)
        assert classification == VIOLATION
        assert violation.property == "agreement"

    def test_stubborn_algorithm_classified_hung(self):
        report = run_campaign(
            CampaignConfig(cell="hang", executions=3, seed=0, t=0)
        )
        assert report.counts[HUNG] == 3
        assert not report.clean


class TestErrorIsolation:
    def test_raising_execution_becomes_incident(self):
        report = run_campaign(
            CampaignConfig(cell="exploding", executions=5, seed=0, t=0)
        )
        # Every execution raised, yet the campaign finished all five.
        assert len(report.incidents) == 5
        assert report.counts[DECIDED_OK] == 0
        assert all(i.error == "ValueError" for i in report.incidents)
        assert not report.clean

    def test_campaign_deadline_skips_remaining(self):
        report = run_campaign(
            CampaignConfig(cell="aa", executions=10_000, seed=0, t=0,
                           deadline=0.0)
        )
        assert report.skipped > 0
        total = sum(report.counts.values())
        assert total + report.skipped == 10_000


class TestIllegalDetection:
    @pytest.mark.parametrize(
        "mode,cell",
        [
            ("lost-write", "aa"),
            ("stale-snapshot", "aa"),
            ("bad-box", "consensus"),
        ],
    )
    def test_every_illegal_execution_detected(self, mode, cell):
        report = run_campaign(
            CampaignConfig(cell=cell, executions=25, seed=0, t=0,
                           illegal=mode, allow_illegal=True)
        )
        assert report.counts[HARNESS_FAULT_DETECTED] == 25
        assert report.counts[DECIDED_OK] == 0


class TestReporting:
    def test_json_report_is_deterministic_shape(self):
        report = run_campaign(
            CampaignConfig(cell="aa", executions=20, seed=0)
        )
        data = report_to_json(report)
        assert data["counts"][DECIDED_OK] == 20
        assert "elapsed" not in data
        assert "peak_rss_kb" not in data

    def test_text_report_mentions_counts(self):
        report = run_campaign(
            CampaignConfig(cell="consensus-broken", executions=100,
                           seed=0, t=0)
        )
        text = render_report(report)
        assert "chaos campaign" in text
        assert "violation @ execution" in text


class TestCellCatalog:
    def test_broken_cells_marked(self):
        for key in ("aa-broken", "consensus-broken", "hang", "exploding"):
            assert CELLS[key].broken
        for key in ("aa", "aa2", "consensus"):
            assert not CELLS[key].broken
