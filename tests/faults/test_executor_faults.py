"""Executor-level fault plans: determinism, horizons, serial degradation."""

import pytest

from repro.errors import TransientTaskError, WorkerCrashError
from repro.faults.executor import (
    ExecutorFaultPlan,
    apply_fault,
    default_plan,
    fault_for,
)
from repro.telemetry import ManualClock, set_ambient_clock


@pytest.fixture(autouse=True)
def _reset_clock():
    yield
    set_ambient_clock(None)


class TestFaultFor:
    def test_pure_in_seed_index_attempt(self):
        plan = ExecutorFaultPlan(seed=3, kill_rate=0.2, error_rate=0.2)
        first = [fault_for(plan, i, 0) for i in range(64)]
        second = [fault_for(plan, i, 0) for i in range(64)]
        assert first == second

    def test_rates_partition_the_roll(self):
        everything = ExecutorFaultPlan(seed=0, kill_rate=1.0)
        assert fault_for(everything, 5, 0) == "kill"
        errors = ExecutorFaultPlan(seed=0, error_rate=1.0)
        assert fault_for(errors, 5, 0) == "error"
        delays = ExecutorFaultPlan(seed=0, delay_rate=1.0)
        assert fault_for(delays, 5, 0) == "delay"
        clean = ExecutorFaultPlan(seed=0)
        assert fault_for(clean, 5, 0) is None

    def test_faulty_attempts_horizon_guarantees_termination(self):
        plan = ExecutorFaultPlan(
            seed=1, kill_rate=0.5, error_rate=0.5, faulty_attempts=2
        )
        for index in range(32):
            assert fault_for(plan, index, 2) is None
            assert fault_for(plan, index, 3) is None

    def test_different_seeds_give_different_plans(self):
        a = ExecutorFaultPlan(seed=0, kill_rate=0.5)
        b = ExecutorFaultPlan(seed=1, kill_rate=0.5)
        assert [fault_for(a, i, 0) for i in range(64)] != [
            fault_for(b, i, 0) for i in range(64)
        ]

    @pytest.mark.parametrize(
        "bad",
        [
            {"kill_rate": -0.1},
            {"error_rate": 1.5},
            {"kill_rate": 0.6, "error_rate": 0.6},
            {"delay_s": -1.0},
            {"faulty_attempts": -1},
        ],
    )
    def test_validate_rejects_bad_plans(self, bad):
        with pytest.raises(ValueError):
            ExecutorFaultPlan(**bad).validate()

    def test_default_plan_is_transient_only(self):
        plan = default_plan(0)
        plan.validate()
        assert plan.faulty_attempts == 1
        assert plan.kill_rate > 0 and plan.error_rate > 0


class TestApplyFault:
    def test_kill_degrades_to_crash_error_in_parent(self):
        # A real SIGKILL on the serial path would take the harness down;
        # the plan must surface as a catchable (retriable) crash instead.
        plan = ExecutorFaultPlan(seed=0, kill_rate=1.0)
        with pytest.raises(WorkerCrashError):
            apply_fault(plan, 0, 0, in_worker=False)

    def test_error_raises_transient_fault(self):
        plan = ExecutorFaultPlan(seed=0, error_rate=1.0)
        with pytest.raises(TransientTaskError):
            apply_fault(plan, 0, 0, in_worker=False)

    def test_delay_sleeps_through_ambient_clock(self):
        clock = ManualClock()
        set_ambient_clock(clock)
        plan = ExecutorFaultPlan(seed=0, delay_rate=1.0, delay_s=2.5)
        apply_fault(plan, 0, 0, in_worker=False)
        assert clock.now() == 2.5

    def test_past_horizon_is_a_no_op(self):
        plan = ExecutorFaultPlan(
            seed=0, kill_rate=1.0, faulty_attempts=1
        )
        apply_fault(plan, 0, 1, in_worker=False)
