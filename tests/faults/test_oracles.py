"""Unit tests for the property oracles (the chaos referees)."""

from fractions import Fraction

import pytest

from repro.errors import RuntimeModelError
from repro.faults.oracles import (
    ApproximateAgreementOracle,
    ConsensusOracle,
    KSetAgreementOracle,
)
from repro.runtime.iterated import ExecutionResult


def _result(decisions, crashed=None):
    return ExecutionResult(
        decisions=decisions, crashed=crashed or {}, trace=()
    )


class TestConsensusOracle:
    def test_agreeing_valid_decisions_pass(self):
        oracle = ConsensusOracle()
        inputs = {1: "a", 2: "b"}
        assert oracle.check(inputs, _result({1: "a", 2: "a"})) is None

    def test_disagreement_flagged(self):
        oracle = ConsensusOracle()
        violation = oracle.check(
            {1: "a", 2: "b"}, _result({1: "a", 2: "b"})
        )
        assert violation is not None
        assert violation.property == "agreement"

    def test_invalid_value_flagged(self):
        oracle = ConsensusOracle()
        violation = oracle.check(
            {1: "a", 2: "b"}, _result({1: "c", 2: "c"})
        )
        assert violation is not None
        assert violation.property == "validity"

    def test_crashed_processes_need_not_decide(self):
        oracle = ConsensusOracle()
        result = _result({1: "a"}, crashed={2: 1})
        assert oracle.check({1: "a", 2: "b"}, result) is None

    def test_nobody_decided_is_a_termination_violation(self):
        violation = ConsensusOracle().check({1: "a"}, _result({}))
        assert violation is not None
        assert violation.property == "termination"


class TestApproximateAgreementOracle:
    def test_within_epsilon_passes(self):
        oracle = ApproximateAgreementOracle(Fraction(1, 4))
        inputs = {1: Fraction(0), 2: Fraction(1)}
        decisions = {1: Fraction(1, 2), 2: Fraction(5, 8)}
        assert oracle.check(inputs, _result(decisions)) is None

    def test_excess_spread_flagged(self):
        oracle = ApproximateAgreementOracle(Fraction(1, 4))
        inputs = {1: Fraction(0), 2: Fraction(1)}
        violation = oracle.check(
            inputs, _result({1: Fraction(0), 2: Fraction(1)})
        )
        assert violation is not None
        assert violation.property == "epsilon-agreement"
        assert "spread" in violation.witness

    def test_out_of_range_decision_flagged(self):
        oracle = ApproximateAgreementOracle(Fraction(1, 2))
        inputs = {1: Fraction(0), 2: Fraction(1, 4)}
        violation = oracle.check(
            inputs, _result({1: Fraction(1, 2), 2: Fraction(1, 2)})
        )
        assert violation is not None
        assert violation.property == "range-validity"

    def test_epsilon_must_be_positive(self):
        with pytest.raises(RuntimeModelError):
            ApproximateAgreementOracle(Fraction(0))


class TestKSetAgreementOracle:
    def test_k_distinct_values_pass(self):
        oracle = KSetAgreementOracle(2)
        inputs = {1: "a", 2: "b", 3: "c"}
        assert (
            oracle.check(inputs, _result({1: "a", 2: "b", 3: "b"})) is None
        )

    def test_too_many_values_flagged(self):
        oracle = KSetAgreementOracle(2)
        inputs = {1: "a", 2: "b", 3: "c"}
        violation = oracle.check(
            inputs, _result({1: "a", 2: "b", 3: "c"})
        )
        assert violation is not None
        assert violation.property == "k-agreement"

    def test_invented_value_flagged(self):
        oracle = KSetAgreementOracle(3)
        violation = oracle.check(
            {1: "a", 2: "b"}, _result({1: "a", 2: "z"})
        )
        assert violation is not None
        assert violation.property == "validity"

    def test_k_must_be_positive(self):
        with pytest.raises(RuntimeModelError):
            KSetAgreementOracle(0)
