"""Tests for counterexample shrinking (delta-debugging fault traces)."""

from fractions import Fraction

from repro.faults.campaign import (
    CampaignConfig,
    replay_trace,
    run_campaign,
)
from repro.faults.injectors import FaultTrace, TraceRound
from repro.faults.oracles import VIOLATION
from repro.faults.shrink import shrink_trace, simplifications, trace_weight


def _first_violation(cell, executions=200, t=0):
    report = run_campaign(
        CampaignConfig(cell=cell, executions=executions, seed=0, t=t)
    )
    assert report.violations, f"no violation found in {cell}"
    return report.violations[0]


class TestTraceWeight:
    def test_benign_trace_has_zero_weight(self):
        trace = FaultTrace(
            inputs=((1, "0"), (2, "1")),
            rounds=(TraceRound(blocks=((1, 2),)),),
            cell="aa",
        )
        assert trace_weight(trace) == 0

    def test_adversarial_features_add_weight(self):
        trace = FaultTrace(
            inputs=((1, "0"), (2, "1")),
            rounds=(
                TraceRound(
                    blocks=((1,), (2,)),
                    crashes=(3,),
                    mid_crashes=(4,),
                    box_choice=2,
                ),
            ),
            cell="aa",
        )
        # 1 extra block + 1 crash + 1 mid-crash + box choice 2 = 5.
        assert trace_weight(trace) == 5

    def test_every_simplification_strictly_decreases_weight(self):
        outcome = _first_violation("consensus-broken")
        for candidate in simplifications(outcome.trace):
            assert trace_weight(candidate) < trace_weight(outcome.trace)


class TestShrinking:
    def test_shrunk_consensus_trace_keeps_verdict(self):
        outcome = _first_violation("consensus-broken")
        shrunk = shrink_trace(outcome.trace)
        classification, violation = replay_trace(shrunk)
        assert classification == VIOLATION
        assert violation.property == "agreement"
        assert trace_weight(shrunk) <= trace_weight(outcome.trace)

    def test_shrunk_trace_is_locally_minimal(self):
        outcome = _first_violation("consensus-broken")
        shrunk = shrink_trace(outcome.trace)

        def verdict(trace):
            classification, violation = replay_trace(trace)
            return classification, (
                violation.property if violation else None
            )

        target = verdict(shrunk)
        for candidate in simplifications(shrunk):
            assert verdict(candidate) != target

    def test_shrunk_aa_trace_keeps_verdict(self):
        outcome = _first_violation("aa-broken")
        shrunk = shrink_trace(outcome.trace)
        classification, violation = replay_trace(shrunk)
        assert classification == VIOLATION
        assert violation.property == "epsilon-agreement"

    def test_consensus_counterexample_shrinks_to_split_rounds(self):
        # Corollary 1's separating execution: every round still present
        # in the minimal trace must keep processes apart — a minimal
        # disagreement witness has no weight-free round left to drop.
        outcome = _first_violation("consensus-broken")
        shrunk = shrink_trace(outcome.trace)
        assert trace_weight(shrunk) >= 1
        assert all(
            not entry.is_benign() or entry.blocks == ()
            for entry in shrunk.rounds
        )

    def test_shrink_is_deterministic(self):
        outcome = _first_violation("consensus-broken")
        assert shrink_trace(outcome.trace) == shrink_trace(outcome.trace)

    def test_custom_replay_function(self):
        # With a constant verdict every simplification is accepted, so
        # shrinking drives the trace all the way to weight zero.
        outcome = _first_violation("consensus-broken")
        shrunk = shrink_trace(outcome.trace, replay=lambda trace: ("X", None))
        assert trace_weight(shrunk) == 0
