"""Tests for fault injectors, trace round-tripping, and replay."""

from fractions import Fraction

import pytest

from repro.algorithms import HalvingAA
from repro.errors import FaultInjectionError, RuntimeModelError
from repro.faults.injectors import (
    AdversarialBoxInjector,
    CompositeInjector,
    CrashStormInjector,
    FaultTrace,
    LostWriteInjector,
    MidRoundCrashInjector,
    ReplayAdversary,
    ReplayInjector,
    StaleSnapshotInjector,
    TraceRound,
)
from repro.models.schedules import schedule_from_blocks
from repro.runtime import (
    FullSyncAdversary,
    IteratedExecutor,
    RandomAdversary,
)

INPUTS = {1: Fraction(0), 2: Fraction(1, 2), 3: Fraction(1)}
SYNC3 = schedule_from_blocks([[1, 2, 3]])


class TestMidRoundCrashInjector:
    def test_deterministic_for_a_seed(self):
        def realized(seed):
            injector = MidRoundCrashInjector(
                seed=seed, probability=0.5, budget=2
            )
            return [
                injector.mid_round_crashes(r, SYNC3) for r in range(1, 5)
            ]

        assert realized(7) == realized(7)

    def test_budget_caps_total_crashes(self):
        injector = MidRoundCrashInjector(seed=0, probability=1.0, budget=1)
        total = set()
        for round_index in range(1, 6):
            total |= injector.mid_round_crashes(round_index, SYNC3)
        assert len(total) == 1

    def test_someone_always_survives(self):
        injector = MidRoundCrashInjector(seed=0, probability=1.0, budget=99)
        doomed = injector.mid_round_crashes(1, SYNC3)
        assert len(doomed) < 3

    def test_probability_validated(self):
        with pytest.raises(RuntimeModelError):
            MidRoundCrashInjector(seed=0, probability=1.5)


class TestCrashStormInjector:
    def test_kills_all_but_min_at_storm_round(self):
        injector = CrashStormInjector(storm_rounds=[2])
        assert injector.mid_round_crashes(1, SYNC3) == frozenset()
        assert injector.mid_round_crashes(2, SYNC3) == frozenset({2, 3})

    def test_budget_limits_the_storm(self):
        injector = CrashStormInjector(storm_rounds=[1], budget=1)
        assert len(injector.mid_round_crashes(1, SYNC3)) == 1

    def test_executor_survives_n_minus_1_crashes(self):
        algorithm = HalvingAA(Fraction(1, 4))
        result = IteratedExecutor(
            injector=CrashStormInjector(storm_rounds=[1])
        ).run(algorithm, INPUTS, FullSyncAdversary())
        assert sorted(result.decisions) == [1]
        assert result.crashed == {2: 1, 3: 1}


class TestIllegalInjectors:
    def test_lost_write_detected(self):
        executor = IteratedExecutor(
            injector=LostWriteInjector(round_index=1, victim=2)
        )
        with pytest.raises(FaultInjectionError):
            executor.run(
                HalvingAA(Fraction(1, 4)), INPUTS, FullSyncAdversary()
            )

    def test_stale_snapshot_detected(self):
        executor = IteratedExecutor(
            injector=StaleSnapshotInjector(round_index=1, victim=2)
        )
        with pytest.raises(FaultInjectionError):
            executor.run(
                HalvingAA(Fraction(1, 4)), INPUTS, FullSyncAdversary()
            )

    def test_composite_legality_is_conjunction(self):
        legal = MidRoundCrashInjector(seed=0)
        illegal = LostWriteInjector(round_index=1, victim=1)
        assert CompositeInjector(legal, legal).legal
        assert not CompositeInjector(legal, illegal).legal


class TestAdversarialBoxInjector:
    def test_choice_is_always_admissible(self):
        injector = AdversarialBoxInjector(seed=3)
        options = [{1: 0, 2: 1}, {1: 1, 2: 0}]
        for round_index in range(1, 30):
            chosen = injector.choose_assignment(
                round_index, SYNC3, options, options[0]
            )
            assert chosen in options


class TestFaultTrace:
    def _trace(self):
        adversary = RandomAdversary(seed=11, crash_probability=0.3)
        result = IteratedExecutor().run(
            HalvingAA(Fraction(1, 8)), INPUTS, adversary
        )
        return FaultTrace.from_execution(result, INPUTS, cell="aa"), result

    def test_json_round_trip_is_identity(self):
        trace, _ = self._trace()
        assert FaultTrace.from_json(trace.to_json()) == trace

    def test_json_encoding_is_stable(self):
        trace, _ = self._trace()
        assert trace.to_json() == trace.to_json()

    def test_parsed_inputs_restore_values(self):
        trace, _ = self._trace()
        assert trace.parsed_inputs(Fraction) == INPUTS

    def test_replay_reproduces_decisions(self):
        trace, original = self._trace()
        replayed = IteratedExecutor(injector=ReplayInjector(trace)).run(
            HalvingAA(Fraction(1, 8)), INPUTS, ReplayAdversary(trace)
        )
        assert replayed.decisions == original.decisions
        assert replayed.crashed == original.crashed
        assert [r.blocks for r in replayed.trace] == [
            r.blocks for r in original.trace
        ]

    def test_benign_round_detection(self):
        assert TraceRound(blocks=((1, 2, 3),)).is_benign()
        assert not TraceRound(blocks=((1,), (2, 3))).is_benign()
        assert not TraceRound(blocks=((1, 2),), crashes=(3,)).is_benign()

    def test_replay_repairs_uncrashed_process(self):
        # Editing a crash out of the trace leaves later rounds without a
        # schedule slot for the revived process; replay must repair.
        trace, _ = self._trace()
        edited = FaultTrace(
            inputs=trace.inputs,
            rounds=tuple(
                TraceRound(
                    blocks=entry.blocks,
                    crashes=(),
                    mid_crashes=(),
                    box_choice=entry.box_choice,
                    views=entry.views,
                )
                for entry in trace.rounds
            ),
            cell=trace.cell,
        )
        result = IteratedExecutor(injector=ReplayInjector(edited)).run(
            HalvingAA(Fraction(1, 8)), INPUTS, ReplayAdversary(edited)
        )
        assert sorted(result.decisions) == [1, 2, 3]
