"""Campaign tracing: one span per trial, verdict as an attribute."""

from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.oracles import DECIDED_OK
from repro.telemetry import ManualClock, MetricsRegistry, tracing


def traced_campaign(config):
    with tracing(
        clock=ManualClock(tick=0.001), registry=MetricsRegistry()
    ) as tracer:
        report = run_campaign(config)
    return report, tracer


class TestCampaignSpans:
    def test_one_span_per_trial_with_verdict(self):
        config = CampaignConfig(cell="aa", n=3, executions=4, seed=3)
        report, tracer = traced_campaign(config)
        (campaign,) = tracer.roots
        assert campaign.name == "chaos/campaign"
        assert campaign.attributes["cell"] == "aa"
        assert campaign.attributes["executions"] == 4
        assert campaign.attributes["clean"] == report.clean

        trials = [
            child
            for child in campaign.children
            if child.name == "chaos/trial"
        ]
        assert len(trials) == 4
        assert [t.attributes["index"] for t in trials] == [0, 1, 2, 3]
        for trial in trials:
            assert trial.attributes["verdict"] == DECIDED_OK
            assert isinstance(trial.attributes["seed"], int)

    def test_incident_trial_records_incident_verdict(self):
        config = CampaignConfig(
            cell="exploding", n=3, executions=2, seed=0
        )
        report, tracer = traced_campaign(config)
        assert len(report.incidents) == 2
        (campaign,) = tracer.roots
        trials = [
            child
            for child in campaign.children
            if child.name == "chaos/trial"
        ]
        assert len(trials) == 2
        for trial in trials:
            # The raising execution is isolated: the trial span still
            # closes cleanly (no exception escapes the campaign loop)
            # and carries the incident verdict plus the error type.
            assert trial.closed
            assert trial.attributes["verdict"] == "INCIDENT"
            assert trial.attributes["error"]
        assert not campaign.attributes["clean"]

    def test_untraced_campaign_unchanged(self):
        # The same campaign without a tracer must classify identically:
        # the spans are observability, not behavior.
        config = CampaignConfig(cell="aa", n=3, executions=4, seed=3)
        traced_report, _ = traced_campaign(config)
        plain_report = run_campaign(config)
        assert plain_report.counts == traced_report.counts
