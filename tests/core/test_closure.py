"""Unit tests for the closure operator CL_M(Π) (Definition 2)."""

from fractions import Fraction

import pytest

from repro.core import ClosureComputer, closure_task
from repro.errors import SolvabilityError
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    liberal_approximate_agreement_task,
)
from repro.tasks.inputs import input_simplex


def F(num, den=1):
    return Fraction(num, den)


class TestMembership:
    def test_delta_subset_of_closure(self, iis):
        # Remark after Definition 2: Δ(σ) ⊆ Δ'(σ).
        task = binary_consensus_task([1, 2])
        computer = ClosureComputer(task, iis)
        sigma = input_simplex({1: 0, 2: 1})
        for facet in task.delta(sigma).facets:
            assert computer.contains(sigma, facet)

    def test_consensus_closure_rejects_disagreement(self, iis):
        task = binary_consensus_task([1, 2])
        computer = ClosureComputer(task, iis)
        sigma = input_simplex({1: 0, 2: 1})
        assert not computer.contains(sigma, input_simplex({1: 0, 2: 1}))
        assert not computer.contains(sigma, input_simplex({1: 1, 2: 0}))

    def test_membership_cached_across_translated_sigmas(self, iis):
        task = approximate_agreement_task([1, 2], F(1, 4), 4)
        computer = ClosureComputer(task, iis)
        sigma_a = input_simplex({1: F(0), 2: F(1, 2)})
        sigma_b = input_simplex({1: F(1, 2), 2: F(0)})  # same window
        tau = input_simplex({1: F(0), 2: F(1, 2)})
        computer.contains(sigma_a, tau)
        before = len(computer._membership_cache)
        computer.contains(sigma_b, tau)
        assert len(computer._membership_cache) == before

    def test_quantify_beta_requires_augmented(self, iis):
        with pytest.raises(SolvabilityError):
            ClosureComputer(binary_consensus_task([1, 2]), iis, quantify_beta=True)


class TestClosureOfAA:
    def test_closure_of_quarter_is_half_two_procs(self, iis):
        # Claim 2 on one window: ε = 1/4 closes to 3ε = 3/4.
        task = approximate_agreement_task([1, 2], F(1, 4), 4)
        bigger = approximate_agreement_task([1, 2], F(3, 4), 4)
        computer = ClosureComputer(task, iis)
        sigma = input_simplex({1: F(0), 2: F(1)})
        assert (
            computer.delta_prime(sigma).simplices
            == bigger.delta(sigma).simplices
        )

    def test_closure_of_liberal_quarter_is_half_three_procs(self, iis):
        # Claim 3 on one window.
        task = liberal_approximate_agreement_task([1, 2, 3], F(1, 4), 4)
        bigger = liberal_approximate_agreement_task([1, 2, 3], F(1, 2), 4)
        computer = ClosureComputer(task, iis)
        sigma = input_simplex({1: F(0), 2: F(1, 2), 3: F(1)})
        assert (
            computer.delta_prime(sigma).simplices
            == bigger.delta(sigma).simplices
        )

    def test_legal_outputs_sorted_and_full_id(self, iis):
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        computer = ClosureComputer(task, iis)
        sigma = input_simplex({1: F(0), 2: F(1)})
        outputs = computer.legal_outputs(sigma)
        assert outputs == sorted(outputs, key=lambda s: s._sort_key())
        assert all(tau.ids == sigma.ids for tau in outputs)


class TestClosureTask:
    def test_as_task_keeps_inputs(self, iis):
        task = binary_consensus_task([1, 2])
        closed = closure_task(task, iis)
        assert closed.input_complex == task.input_complex

    def test_closure_of_consensus_is_consensus(self, iis):
        # Corollary 1's engine: CL(consensus) has the same specification.
        task = binary_consensus_task([1, 2])
        closed = closure_task(task, iis)
        assert closed.same_specification_as(task)

    def test_closure_name(self, iis):
        closed = closure_task(binary_consensus_task([1, 2]), iis)
        assert "CL_" in closed.name
        named = closure_task(
            binary_consensus_task([1, 2]), iis, name="custom"
        )
        assert named.name == "custom"

    def test_closure_output_complex_covers_images(self, iis):
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        closed = closure_task(task, iis)
        for sigma in task.input_complex:
            assert (
                closed.delta(sigma).simplices
                <= closed.output_complex.simplices
            )

    def test_restricted_materialization(self, iis):
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        computer = ClosureComputer(task, iis)
        sigma = input_simplex({1: F(0), 2: F(1)})
        closed = computer.as_task(input_simplices=[sigma])
        assert closed.delta(sigma) == computer.delta_prime(sigma)


class TestClosureWithBoxes:
    def test_tas_closure_of_2proc_consensus_is_everything(self, iis_tas):
        # Section 4.3: with test&set, 2-process consensus is 1-round
        # solvable, so its closure allows every chromatic output pair.
        task = binary_consensus_task([1, 2])
        computer = ClosureComputer(task, iis_tas)
        sigma = input_simplex({1: 0, 2: 1})
        outputs = set(computer.legal_outputs(sigma))
        assert len(outputs) == 4  # all bit pairs

    def test_quantify_beta_expands_closure(self, iis_bc_beta011):
        # With β quantification the solver may pick a β that separates the
        # two processes, making 2-process consensus-like coordination
        # possible (consensus box has consensus number ∞).
        task = binary_consensus_task([1, 2])
        fixed = ClosureComputer(task, iis_bc_beta011)
        quantified = ClosureComputer(task, iis_bc_beta011, quantify_beta=True)
        sigma = input_simplex({1: 0, 2: 1})
        assert set(fixed.legal_outputs(sigma)) <= set(
            quantified.legal_outputs(sigma)
        )
