"""Unit tests for the solvability decision procedure."""

from fractions import Fraction

import pytest

from repro.core import find_decision_map, is_solvable
from repro.core.solvability import build_solvability_problem
from repro.errors import SolvabilityError
from repro.models import ProtocolOperator
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    multivalued_consensus_task,
)
from repro.tasks.inputs import input_simplex


def F(num, den=1):
    return Fraction(num, den)


class TestZeroRounds:
    def test_trivial_task_zero_round_solvable(self, iis):
        # "Output your input" is 0-round solvable.
        task = approximate_agreement_task([1, 2], 1, 1)
        assert is_solvable(task, iis, 0)

    def test_consensus_not_zero_round_solvable(self, iis):
        assert not is_solvable(binary_consensus_task([1, 2]), iis, 0)

    def test_claim1_aa_not_zero_round_solvable(self, iis):
        # Claim 1: ε < 1 ⟹ no 0-round algorithm.
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        assert not is_solvable(task, iis, 0)

    def test_negative_rounds_rejected(self, iis):
        with pytest.raises(SolvabilityError):
            is_solvable(binary_consensus_task([1, 2]), iis, -1)


class TestOneRound:
    def test_half_aa_solvable_in_one_round_two_procs(self, iis):
        # ⌈log₃ 3⌉ = 1 round suffices for ε = 1/3 … use ε = 1/2 with m = 2:
        # ⌈log₃ 2⌉ = 1.
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        decision = find_decision_map(task, iis, 1)
        assert decision is not None
        assert decision.rounds == 1

    def test_half_aa_solvable_in_one_round_three_procs(self, iis):
        task = approximate_agreement_task([1, 2, 3], F(1, 2), 2)
        assert is_solvable(task, iis, 1)

    def test_consensus_not_one_round_solvable(self, iis):
        assert not is_solvable(binary_consensus_task([1, 2]), iis, 1)

    def test_decision_map_respects_delta(self, iis):
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        operator = ProtocolOperator(iis)
        decision = find_decision_map(task, iis, 1, operator=operator)
        for sigma in task.input_complex:
            allowed = task.delta(sigma).simplices
            for facet in operator.of_simplex(sigma, 1).facets:
                assert decision.output_simplex(facet) in allowed

    def test_restricting_inputs_can_make_solvable(self, iis):
        # On uniform inputs only, consensus is trivially solvable.
        task = binary_consensus_task([1, 2])
        uniform = [
            input_simplex({1: 0, 2: 0}),
            input_simplex({1: 1, 2: 1}),
            input_simplex({1: 0}),
            input_simplex({2: 1}),
            input_simplex({1: 1}),
            input_simplex({2: 0}),
        ]
        assert is_solvable(task, iis, 0, input_simplices=uniform)


class TestQuarterEpsilon:
    def test_quarter_aa_needs_two_rounds(self, iis):
        # Corollary 3 for n = 2: ⌈log₃ 4⌉ = 2 rounds; one round must fail.
        task = approximate_agreement_task([1, 2], F(1, 4), 4)
        assert not is_solvable(task, iis, 1)

    def test_quarter_aa_two_rounds_suffice_constructively(self, iis):
        # Existence via the explicit algorithm (Eq. 2 iterated), instead of
        # an expensive blind search: extract its decision map and check it
        # against Δ — this *is* a 2-round solvability witness.
        from repro.algorithms import TwoProcessThirdsAA
        from repro.models import ProtocolOperator
        from repro.runtime import extract_decision_map

        task = approximate_agreement_task([1, 2], F(1, 4), 4)
        algorithm = TwoProcessThirdsAA(F(1, 4))
        assert algorithm.rounds == 2
        decision = extract_decision_map(algorithm, iis, task.input_complex)
        operator = ProtocolOperator(iis)
        for sigma in task.input_complex:
            allowed = task.delta(sigma).simplices
            for facet in operator.of_simplex(sigma, 2).facets:
                assert decision.output_simplex(facet) in allowed


class TestAugmentedSolvability:
    def test_two_proc_consensus_with_tas_one_round(self, iis_tas):
        # Fig. 4: binary consensus for 2 processes, one round with test&set.
        assert is_solvable(binary_consensus_task([1, 2]), iis_tas, 1)

    def test_multivalued_two_proc_with_tas(self, iis_tas):
        task = multivalued_consensus_task([1, 2], ["x", "y", "z"])
        assert is_solvable(task, iis_tas, 1)

    def test_two_proc_consensus_without_tas_unsolvable(self, iis):
        assert not is_solvable(binary_consensus_task([1, 2]), iis, 1)
        assert not is_solvable(binary_consensus_task([1, 2]), iis, 2)


class TestProblemCompilation:
    def test_empty_domain_means_unsolvable(self, iis):
        task = binary_consensus_task([1, 2])
        operator = ProtocolOperator(iis)
        problem = build_solvability_problem(
            list(task.input_complex),
            task.delta,
            lambda sigma: operator.of_simplex(sigma, 1),
            rounds=1,
        )
        # Candidate domains are non-empty (the search fails later).
        assert all(problem.candidates.values())
        assert problem.solve() is None

    def test_candidates_are_color_preserving(self, iis):
        task = binary_consensus_task([1, 2])
        operator = ProtocolOperator(iis)
        problem = build_solvability_problem(
            list(task.input_complex),
            task.delta,
            lambda sigma: operator.of_simplex(sigma, 1),
        )
        for vertex, domain in problem.candidates.items():
            assert all(image.color == vertex.color for image in domain)


class TestProblemConstruction:
    """Regressions for the dataclass field layout and search-state reset."""

    def _compiled(self, iis, rounds=1):
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        operator = ProtocolOperator(iis)
        return build_solvability_problem(
            list(task.input_complex),
            task.delta,
            lambda sigma: operator.of_simplex(sigma, rounds),
            rounds=rounds,
        )

    def test_positional_construction_binds_rounds(self, iis):
        # ``last_search_nodes`` once leaked into the dataclass __init__ as a
        # fourth positional parameter, silently swallowing arguments meant
        # for nothing.  Positional construction must bind exactly
        # (candidates, constraints, rounds).
        from repro.core.solvability import SolvabilityProblem

        compiled = self._compiled(iis)
        problem = SolvabilityProblem(
            compiled.candidates, compiled.constraints, 3
        )
        assert problem.rounds == 3
        assert problem.last_search_nodes == 0

    def test_no_fourth_positional_parameter(self, iis):
        from repro.core.solvability import SolvabilityProblem

        compiled = self._compiled(iis)
        with pytest.raises(TypeError):
            SolvabilityProblem(
                compiled.candidates, compiled.constraints, 3, 99
            )

    def test_last_search_nodes_not_settable_at_init(self, iis):
        from repro.core.solvability import SolvabilityProblem

        compiled = self._compiled(iis)
        with pytest.raises(TypeError):
            SolvabilityProblem(
                compiled.candidates,
                compiled.constraints,
                rounds=1,
                last_search_nodes=5,
            )


class TestBudgetRecovery:
    """A budget failure must not poison later solves (satellite b)."""

    def _hard_but_solvable(self, iis):
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        operator = ProtocolOperator(iis)
        return build_solvability_problem(
            list(task.input_complex),
            task.delta,
            lambda sigma: operator.of_simplex(sigma, 1),
            rounds=1,
        )

    def test_resolve_after_budget_failure(self, iis):
        problem = self._hard_but_solvable(iis)
        # Starve the raw search so SolvabilityError fires mid-backtrack.
        with pytest.raises(SolvabilityError):
            problem.solve(
                use_propagation=False, use_components=False, node_limit=1
            )
        # The interrupted search must have unwound its partial assignment;
        # a fresh solve on the same instance still finds the map.
        decision = problem.solve()
        assert decision is not None
        for facet, allowed in problem.constraints:
            assert decision.output_simplex(facet) in allowed

    def test_budget_failure_repeatable(self, iis):
        problem = self._hard_but_solvable(iis)
        for _ in range(2):
            with pytest.raises(SolvabilityError):
                problem.solve(
                    use_propagation=False,
                    use_components=False,
                    node_limit=1,
                )
        assert problem.solve() is not None
