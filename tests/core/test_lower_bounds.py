"""Unit tests for the lower-bound engines and closed forms."""

from fractions import Fraction

import pytest

from repro.core import (
    aa_lower_bound_iis,
    aa_lower_bound_iis_bc,
    aa_lower_bound_iis_tas,
    aa_upper_bound_iis,
    ceil_log,
    iterated_closure_lower_bound,
)
from repro.errors import SolvabilityError
from repro.tasks import approximate_agreement_task, binary_consensus_task


def F(num, den=1):
    return Fraction(num, den)


class TestCeilLog:
    @pytest.mark.parametrize(
        "base, value, expected",
        [
            (2, 1, 0),
            (2, 2, 1),
            (2, 3, 2),
            (2, 4, 2),
            (2, 5, 3),
            (3, 3, 1),
            (3, 4, 2),
            (3, 9, 2),
            (3, 10, 3),
            (2, F(1, 2), 0),
        ],
    )
    def test_values(self, base, value, expected):
        assert ceil_log(base, value) == expected

    def test_exact_rational_handling(self):
        # 2^10 = 1024 ≥ 1000, 2^9 = 512 < 1000.
        assert ceil_log(2, 1000) == 10
        assert ceil_log(2, F(1023)) == 10
        assert ceil_log(2, 1024) == 10
        assert ceil_log(2, 1025) == 11

    def test_invalid_base(self):
        with pytest.raises(SolvabilityError):
            ceil_log(1, 4)


class TestClosedForms:
    @pytest.mark.parametrize(
        "eps, expected", [(F(1, 2), 1), (F(1, 3), 1), (F(1, 4), 2), (F(1, 9), 2), (F(1, 10), 3)]
    )
    def test_two_process_iis(self, eps, expected):
        assert aa_lower_bound_iis(2, eps) == expected

    @pytest.mark.parametrize(
        "eps, expected", [(F(1, 2), 1), (F(1, 4), 2), (F(1, 8), 3), (F(1, 5), 3)]
    )
    def test_three_process_iis(self, eps, expected):
        assert aa_lower_bound_iis(3, eps) == expected
        assert aa_lower_bound_iis(7, eps) == expected  # n ≥ 3 uniform

    def test_crossover_two_vs_three(self):
        # The paper's crossover: base 3 for n = 2, base 2 for n ≥ 3.
        eps = F(1, 9)
        assert aa_lower_bound_iis(2, eps) == 2
        assert aa_lower_bound_iis(3, eps) == 4

    def test_tas_does_not_help_n_ge_3(self):
        # Theorem 3: identical bound with or without test&set.
        for eps in (F(1, 2), F(1, 4), F(1, 8), F(1, 16)):
            assert aa_lower_bound_iis_tas(3, eps) == aa_lower_bound_iis(3, eps)

    def test_tas_helps_two_processes(self):
        # n = 2: one round suffices with test&set, regardless of ε.
        assert aa_lower_bound_iis_tas(2, F(1, 1024)) == 1
        assert aa_lower_bound_iis(2, F(1, 1024)) == 7

    @pytest.mark.parametrize(
        "n, eps, expected",
        [
            (3, F(1, 4), 1),  # min(2, ⌈log₂3⌉-1 = 1)
            (4, F(1, 4), 1),  # min(2, 1)
            (8, F(1, 4), 2),  # min(2, 2)
            (16, F(1, 4), 2),  # min(2, 3)
            (16, F(1, 64), 3),  # min(6, 3)
            (1024, F(1, 4), 2),  # ε side binds
        ],
    )
    def test_binary_consensus_bound(self, n, eps, expected):
        assert aa_lower_bound_iis_bc(n, eps) == expected

    def test_bc_bound_requires_three_processes(self):
        with pytest.raises(SolvabilityError):
            aa_lower_bound_iis_bc(2, F(1, 2))

    def test_upper_matches_lower_in_iis(self):
        for n in (2, 3, 5):
            for eps in (F(1, 2), F(1, 4), F(1, 8)):
                assert aa_upper_bound_iis(n, eps) == aa_lower_bound_iis(n, eps)

    def test_invalid_n(self):
        with pytest.raises(SolvabilityError):
            aa_lower_bound_iis(1, F(1, 2))


class TestGenericIteration:
    def test_zero_for_trivial_task(self, iis):
        task = approximate_agreement_task([1, 2], 1, 1)
        assert iterated_closure_lower_bound(task, iis, max_rounds=3) == 0

    def test_one_round_needed_for_half_aa(self, iis):
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        assert iterated_closure_lower_bound(task, iis, max_rounds=3) == 1

    def test_consensus_hits_the_cap(self, iis):
        # Consensus is a fixed point: the iteration never bottoms out.
        task = binary_consensus_task([1, 2])
        assert iterated_closure_lower_bound(task, iis, max_rounds=3) == 3

    def test_quarter_aa_needs_two_rounds_generic(self, iis):
        task = approximate_agreement_task([1, 2], F(1, 4), 4)
        assert iterated_closure_lower_bound(task, iis, max_rounds=4) == 2
