"""Unit tests for fixed points and Lemma 1's impossibility pipeline."""

from fractions import Fraction


from repro.core import impossibility_from_fixed_point, is_fixed_point
from repro.tasks import (
    approximate_agreement_task,
    binary_consensus_task,
    relaxed_consensus_task,
)
from repro.tasks.inputs import input_simplex


def F(num, den=1):
    return Fraction(num, den)


class TestFixedPointDetection:
    def test_consensus_is_fixed_point_of_iis_two_procs(self, iis):
        assert is_fixed_point(binary_consensus_task([1, 2]), iis)

    def test_consensus_is_fixed_point_of_iis_three_procs(self, iis):
        task = binary_consensus_task([1, 2, 3])
        # Checking the mixed-input facets is the interesting part; uniform
        # ones are trivially fixed.
        mixed = [
            sigma
            for sigma in task.input_complex.simplices_of_dim(2)
            if len({v.value for v in sigma.vertices}) == 2
        ]
        assert is_fixed_point(task, iis, input_simplices=mixed)

    def test_aa_is_not_fixed_point(self, iis):
        # The whole point of Section 5: ε-AA closes to (3ε)-AA, not itself.
        task = approximate_agreement_task([1, 2], F(1, 4), 4)
        sigma = input_simplex({1: F(0), 2: F(1)})
        assert not is_fixed_point(task, iis, input_simplices=[sigma])

    def test_relaxed_consensus_fixed_point_of_tas(self, iis_tas):
        # Corollary 2's engine.
        task = relaxed_consensus_task([1, 2, 3])
        mixed = [
            sigma
            for sigma in task.input_complex.simplices_of_dim(2)
            if len({v.value for v in sigma.vertices}) == 2
        ]
        assert is_fixed_point(task, iis_tas, input_simplices=mixed)

    def test_plain_consensus_not_fixed_point_of_tas(self, iis_tas):
        # Two-process faces become solvable with test&set, so the closure
        # is strictly bigger than Δ on 1-dimensional simplices.
        task = binary_consensus_task([1, 2, 3])
        edge = input_simplex({1: 0, 2: 1})
        assert not is_fixed_point(task, iis_tas, input_simplices=[edge])


class TestImpossibilityPipeline:
    def test_corollary1_two_processes(self, iis):
        report = impossibility_from_fixed_point(
            binary_consensus_task([1, 2]), iis
        )
        assert report.fixed_point
        assert not report.zero_round_solvable
        assert report.unsolvable
        assert "unsolvable" in report.summary()

    def test_corollary2_three_processes(self, iis_tas):
        report = impossibility_from_fixed_point(
            relaxed_consensus_task([1, 2, 3]), iis_tas
        )
        assert report.unsolvable

    def test_solvable_task_not_flagged(self, iis):
        task = approximate_agreement_task([1, 2], 1, 1)
        report = impossibility_from_fixed_point(task, iis)
        assert report.zero_round_solvable
        assert not report.unsolvable
        assert "zero rounds" in report.summary()

    def test_non_fixed_point_reported_with_counterexamples(self, iis):
        task = approximate_agreement_task([1, 2], F(1, 4), 4)
        sigma = input_simplex({1: F(0), 2: F(1)})
        report = impossibility_from_fixed_point(
            task, iis, input_simplices=[sigma]
        )
        assert not report.fixed_point
        assert report.counterexamples == [sigma]
        assert not report.unsolvable
        assert "NOT a fixed point" in report.summary()
