"""Unit tests for local tasks Π_{τ,σ} (Definition 1)."""

from fractions import Fraction

import pytest

from repro.core import local_task
from repro.core.solvability import build_solvability_problem
from repro.errors import TaskSpecificationError
from repro.models import ProtocolOperator
from repro.tasks import approximate_agreement_task, binary_consensus_task
from repro.tasks.inputs import input_simplex
from repro.topology import Simplex


def F(num, den=1):
    return Fraction(num, den)


@pytest.fixture
def consensus3():
    return binary_consensus_task([1, 2, 3])


class TestConstruction:
    def test_valid_local_task(self, consensus3):
        sigma = input_simplex({1: 0, 2: 1})
        tau = input_simplex({1: 0, 2: 1})  # a chromatic, non-Δ(σ) set
        task = local_task(consensus3, sigma, tau)
        assert task.input_complex.facets == frozenset({tau})

    def test_id_mismatch_rejected(self, consensus3):
        sigma = input_simplex({1: 0, 2: 1})
        tau = input_simplex({1: 0})
        with pytest.raises(TaskSpecificationError):
            local_task(consensus3, sigma, tau)

    def test_tau_outside_delta_vertices_rejected(self, consensus3):
        sigma = input_simplex({1: 0, 2: 0})  # uniform: Δ(σ) = {all-0}
        tau = input_simplex({1: 0, 2: 1})  # (2,1) is not in V(Δ(σ))
        with pytest.raises(TaskSpecificationError):
            local_task(consensus3, sigma, tau)


class TestSpecification:
    def test_condition1_vertices_pinned(self, consensus3):
        sigma = input_simplex({1: 0, 2: 1})
        tau = input_simplex({1: 0, 2: 1})
        task = local_task(consensus3, sigma, tau)
        vertex_face = Simplex([(1, 0)])
        assert task.delta(vertex_face).facets == frozenset({vertex_face})

    def test_condition2_faces_free_within_projection(self, consensus3):
        sigma = input_simplex({1: 0, 2: 1, 3: 1})
        tau = input_simplex({1: 0, 2: 1, 3: 0})
        task = local_task(consensus3, sigma, tau)
        edge = Simplex([(1, 0), (2, 1)])
        legal = task.delta(edge)
        # proj_{1,2}(Δ(σ)) = both monochromatic edges.
        assert legal.facets == frozenset(
            {input_simplex({1: 0, 2: 0}), input_simplex({1: 1, 2: 1})}
        )

    def test_monotone_but_rigid(self, consensus3):
        # Local tasks are monotone ({v} sits inside every projection), but
        # they are rigid on vertices: Δ_{τ,σ}(v) is a single vertex while
        # the projection of Δ(σ) on v's color has more — this strictness is
        # why the solvability engine must constrain every face of τ.
        sigma = input_simplex({1: 0, 2: 1})
        tau = input_simplex({1: 0, 2: 1})
        task = local_task(consensus3, sigma, tau)
        assert task.is_monotone()
        vertex_face = Simplex([(1, 0)])
        pinned = task.delta(vertex_face).vertices
        free = consensus3.delta(sigma).proj({1}).vertices
        assert pinned < free

    def test_full_tau_maps_to_whole_delta(self, consensus3):
        sigma = input_simplex({1: 0, 2: 1, 3: 1})
        tau = input_simplex({1: 0, 2: 1, 3: 0})
        task = local_task(consensus3, sigma, tau)
        assert task.delta(tau).simplices == consensus3.delta(sigma).simplices

    def test_foreign_face_rejected(self, consensus3):
        sigma = input_simplex({1: 0, 2: 1})
        tau = input_simplex({1: 0, 2: 1})
        task = local_task(consensus3, sigma, tau)
        with pytest.raises(TaskSpecificationError):
            task.delta(input_simplex({1: 1}))


class TestSolvability:
    def test_legal_tau_gives_zero_round_local_task(self, consensus3, iis):
        # τ ∈ Δ(σ): each process outputs its input.
        sigma = input_simplex({1: 0, 2: 1})
        tau = input_simplex({1: 0, 2: 0})
        task = local_task(consensus3, sigma, tau)
        operator = ProtocolOperator(iis)
        problem = build_solvability_problem(
            list(task.input_complex),
            task.delta,
            lambda face: operator.of_simplex(face, 0),
        )
        assert problem.solve() is not None

    def test_disagreeing_tau_unsolvable_for_consensus(self, consensus3, iis):
        # The crux of Corollary 1: the path argument makes Π_{τ,σ}
        # unsolvable in one round when τ mixes decisions.
        sigma = input_simplex({1: 0, 2: 1})
        tau = input_simplex({1: 0, 2: 1})
        task = local_task(consensus3, sigma, tau)
        operator = ProtocolOperator(iis)
        problem = build_solvability_problem(
            list(task.input_complex),
            task.delta,
            lambda face: operator.of_simplex(face, 1),
            rounds=1,
        )
        assert problem.solve() is None

    def test_aa_tau_within_3eps_solvable_two_procs(self, iis):
        # Claim 2's Eq. (2) direction: |y1 - y2| ≤ 3ε ⟹ solvable.
        task_aa = approximate_agreement_task([1, 2], F(1, 4), 4)
        sigma = input_simplex({1: F(0), 2: F(1)})
        tau = input_simplex({1: F(0), 2: F(3, 4)})  # gap 3ε
        local = local_task(task_aa, sigma, tau)
        operator = ProtocolOperator(iis)
        problem = build_solvability_problem(
            list(local.input_complex),
            local.delta,
            lambda face: operator.of_simplex(face, 1),
            rounds=1,
        )
        assert problem.solve() is not None

    def test_aa_tau_beyond_3eps_unsolvable_two_procs(self, iis):
        task_aa = approximate_agreement_task([1, 2], F(1, 4), 4)
        sigma = input_simplex({1: F(0), 2: F(1)})
        tau = input_simplex({1: F(0), 2: F(1)})  # gap 4ε > 3ε
        local = local_task(task_aa, sigma, tau)
        operator = ProtocolOperator(iis)
        problem = build_solvability_problem(
            list(local.input_complex),
            local.delta,
            lambda face: operator.of_simplex(face, 1),
            rounds=1,
        )
        assert problem.solve() is None
