"""Unit tests for the constructive speedup theorem (Theorems 1–2)."""

from fractions import Fraction

import pytest

from repro.core import (
    find_decision_map,
    is_solvable,
    speedup_decision_map,
    verify_speedup_theorem,
)
from repro.core.solvability import DecisionMap
from repro.errors import SolvabilityError
from repro.models import ProtocolOperator
from repro.tasks import approximate_agreement_task, binary_consensus_task


def F(num, den=1):
    return Fraction(num, den)


class TestConstruction:
    def test_speedup_map_defined_on_previous_round(self, iis):
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        decision = find_decision_map(task, iis, 1)
        faster = speedup_decision_map(task, iis, decision)
        assert faster.rounds == 0
        operator = ProtocolOperator(iis)
        for sigma in task.input_complex:
            for vertex in operator.of_simplex(sigma, 0).vertices:
                assert vertex in faster.assignment

    def test_zero_round_map_rejected(self, iis):
        task = approximate_agreement_task([1, 2], 1, 1)
        decision = find_decision_map(task, iis, 0)
        with pytest.raises(SolvabilityError):
            speedup_decision_map(task, iis, decision)

    def test_mismatched_map_rejected(self, iis):
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        bogus = DecisionMap({}, rounds=1)
        with pytest.raises(SolvabilityError):
            speedup_decision_map(task, iis, bogus)

    def test_solo_evaluation(self, iis):
        # f'(i, V) must equal f at the solo extension of (i, V).
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        decision = find_decision_map(task, iis, 1)
        faster = speedup_decision_map(task, iis, decision)
        for vertex, image in faster.assignment.items():
            solo = iis.solo_vertex(vertex)
            assert decision.assignment[solo] == image


class TestVerification:
    def test_theorem1_on_one_round_aa(self, iis):
        # ε = 1/2 AA (2 procs) is 1-round solvable; its closure (3/2·ε ≥ 1,
        # i.e. trivial AA) must be 0-round solvable via f'.
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        decision = find_decision_map(task, iis, 1)
        report = verify_speedup_theorem(task, iis, decision)
        assert report.original_valid
        assert report.sped_up_valid
        assert report.holds
        assert report.violations == []

    def test_theorem1_three_processes(self, iis):
        task = approximate_agreement_task([1, 2, 3], F(1, 2), 2)
        decision = find_decision_map(task, iis, 1)
        report = verify_speedup_theorem(task, iis, decision)
        assert report.holds

    def test_theorem2_with_test_and_set(self, iis_tas):
        # 2-process consensus is 1-round solvable with test&set; the
        # extended speedup construction must give a 0-round closure solver.
        task = binary_consensus_task([1, 2])
        decision = find_decision_map(task, iis_tas, 1)
        assert decision is not None
        report = verify_speedup_theorem(task, iis_tas, decision)
        assert report.holds

    def test_invalid_original_map_reported(self, iis):
        # A constant map does not solve AA on wide inputs; the report
        # must flag it rather than silently "verifying" the theorem.
        task = approximate_agreement_task([1, 2], F(1, 2), 2)
        operator = ProtocolOperator(iis)
        assignment = {}
        from repro.topology import Vertex

        for sigma in task.input_complex:
            for vertex in operator.of_simplex(sigma, 1).vertices:
                assignment[vertex] = Vertex(vertex.color, F(0))
        bogus = DecisionMap(assignment, rounds=1)
        report = verify_speedup_theorem(task, iis, bogus)
        assert not report.original_valid
