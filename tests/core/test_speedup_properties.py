"""Property-based tests of the speedup theorem on *random* tasks.

Theorem 1 is universally quantified over tasks; hypothesis generates random
two-process task specifications (arbitrary, possibly non-monotone Δ over
binary inputs and outputs), searches for a one-round solution, and — when
one exists — checks that the constructed ``f'`` solves the closure in zero
rounds.  Also checks closure monotonicity ``Δ(σ) ⊆ Δ'(σ)`` on random tasks
and that solutions found by the engine are genuine.
"""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClosureComputer, find_decision_map, verify_speedup_theorem
from repro.models import ImmediateSnapshotModel, ProtocolOperator
from repro.tasks import Task
from repro.tasks.inputs import binary_input_complex
from repro.topology import Simplex, SimplicialComplex

IIS = ImmediateSnapshotModel()
IDS = (1, 2)

# All full-ID output assignments over binary values, for each ID set.
_ASSIGNMENTS = {
    frozenset(subset): [
        Simplex(zip(sorted(subset), combo))
        for combo in product((0, 1), repeat=len(subset))
    ]
    for size in (1, 2)
    for subset in [IDS[:size], IDS[1:][: size - 1] or (2,)]
}
_ASSIGNMENTS[frozenset({1})] = [Simplex([(1, 0)]), Simplex([(1, 1)])]
_ASSIGNMENTS[frozenset({2})] = [Simplex([(2, 0)]), Simplex([(2, 1)])]
_ASSIGNMENTS[frozenset({1, 2})] = [
    Simplex([(1, a), (2, b)]) for a in (0, 1) for b in (0, 1)
]


@st.composite
def random_tasks(draw):
    """A random 2-process task with binary inputs and outputs.

    Each input simplex independently receives a random non-empty set of
    legal output assignments on its colors — including non-monotone and
    asymmetric specifications.
    """
    input_complex = binary_input_complex(IDS)
    table = {}
    for sigma in input_complex:
        options = _ASSIGNMENTS[sigma.ids]
        chosen = draw(
            st.lists(
                st.sampled_from(options),
                min_size=1,
                max_size=len(options),
                unique=True,
            )
        )
        table[sigma] = SimplicialComplex(chosen)
    output_complex = SimplicialComplex(
        facet for complex_ in table.values() for facet in complex_.facets
    )

    def delta(sigma):
        return table[sigma]

    return Task("random-task", input_complex, output_complex, delta)


@given(random_tasks())
@settings(max_examples=60, deadline=None)
def test_speedup_theorem_holds_on_random_tasks(task):
    decision = find_decision_map(task, IIS, 1)
    if decision is None:
        return  # Theorem 1 only speaks about solvable tasks.
    report = verify_speedup_theorem(task, IIS, decision)
    assert report.original_valid
    assert report.sped_up_valid, (
        f"speedup violated on {task.specification_table()}: "
        f"{report.violations}"
    )


@given(random_tasks())
@settings(max_examples=40, deadline=None)
def test_closure_contains_delta_on_random_tasks(task):
    computer = ClosureComputer(task, IIS)
    for sigma in task.input_complex:
        for facet in task.delta(sigma).facets:
            if facet.ids == sigma.ids:
                assert computer.contains(sigma, facet)


@given(random_tasks())
@settings(max_examples=30, deadline=None)
def test_found_decision_maps_are_genuine(task):
    operator = ProtocolOperator(IIS)
    decision = find_decision_map(task, IIS, 1, operator=operator)
    if decision is None:
        return
    for sigma in task.input_complex:
        allowed = task.delta(sigma).simplices
        for facet in operator.of_simplex(sigma, 1).facets:
            assert decision.output_simplex(facet) in allowed


@given(random_tasks())
@settings(max_examples=30, deadline=None)
def test_zero_round_solvability_implies_one_round(task):
    # Monotonicity of solvability in the round count: a 0-round algorithm
    # can be run as a 1-round algorithm that ignores its collect.
    zero = find_decision_map(task, IIS, 0)
    if zero is None:
        return
    assert find_decision_map(task, IIS, 1) is not None


# ---------------------------------------------------------------------------
# Theorem 2 (augmented models) on random tasks
# ---------------------------------------------------------------------------

from repro.objects import AugmentedModel, TestAndSetBox  # noqa: E402

TAS_MODEL = AugmentedModel(TestAndSetBox())


@given(random_tasks())
@settings(max_examples=40, deadline=None)
def test_extended_speedup_theorem_holds_on_random_tasks(task):
    # Theorem 2: the same universality with a black box in the loop.
    decision = find_decision_map(task, TAS_MODEL, 1)
    if decision is None:
        return
    report = verify_speedup_theorem(task, TAS_MODEL, decision)
    assert report.original_valid
    assert report.sped_up_valid, (
        f"extended speedup violated on {task.specification_table()}: "
        f"{report.violations}"
    )


@given(random_tasks())
@settings(max_examples=30, deadline=None)
def test_box_never_hurts_solvability(task):
    # Anything 1-round solvable with registers alone stays solvable with
    # test&set available (the algorithm may ignore the box).
    if find_decision_map(task, IIS, 1) is not None:
        assert find_decision_map(task, TAS_MODEL, 1) is not None
