"""RPR006 — the static half of the mask-provenance contract."""

import textwrap

from repro.checks.findings import Severity
from repro.checks.flow import analyze_source


def analyze(code, module="repro.experiments.fixture"):
    return analyze_source(
        textwrap.dedent(code), path="fixture.py", module=module
    )


def findings_of(code, rule_id="RPR006"):
    return [f for f in analyze(code) if f.rule_id == rule_id]


class TestBitwiseMixing:
    def test_or_of_masks_from_two_tables_is_an_error(self):
        found = findings_of(
            """
            from repro.topology import VertexTable

            def bad(s1, s2):
                a = VertexTable()
                b = VertexTable()
                m1 = a.encode_mask_interning(s1)
                m2 = b.encode_mask_interning(s2)
                return m1 | m2
            """
        )
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert found[0].path == "fixture.py:9"

    def test_and_and_xor_also_fire(self):
        code = """
            from repro.topology import VertexTable

            def bad(s1, s2):
                a = VertexTable()
                b = VertexTable()
                m1 = a.encode_mask_interning(s1)
                m2 = b.encode_mask_interning(s2)
                x = m1 & m2
                y = m1 ^ m2
                return x, y
            """
        assert len(findings_of(code)) == 2

    def test_same_table_masks_combine_freely(self):
        assert (
            findings_of(
                """
                from repro.topology import VertexTable

                def good(s1, s2):
                    t = VertexTable()
                    m1 = t.encode_mask_interning(s1)
                    m2 = t.encode_mask_interning(s2)
                    return m1 | m2, m1 & m2, m1 ^ m2
                """
            )
            == []
        )

    def test_mask_and_plain_int_is_fine(self):
        assert (
            findings_of(
                """
                from repro.topology import VertexTable

                def good(s1):
                    t = VertexTable()
                    m = t.encode_mask_interning(s1)
                    return m & (m - 1)
                """
            )
            == []
        )

    def test_full_mask_attribute_carries_provenance(self):
        found = findings_of(
            """
            from repro.topology import VertexTable

            def bad(s1):
                a = VertexTable()
                b = VertexTable()
                m = a.encode_mask_interning(s1)
                return m & b.full_mask
            """
        )
        assert len(found) == 1


class TestComparison:
    def test_equality_across_tables_fires(self):
        found = findings_of(
            """
            from repro.topology import VertexTable

            def bad(s1, s2):
                a = VertexTable()
                b = VertexTable()
                return a.encode_mask_interning(s1) == b.encode_mask_interning(s2)
            """
        )
        assert len(found) == 1

    def test_ordering_across_tables_fires(self):
        found = findings_of(
            """
            from repro.topology import VertexTable

            def bad(s1, s2):
                a = VertexTable()
                b = VertexTable()
                m1 = a.encode_mask_interning(s1)
                m2 = b.encode_mask_interning(s2)
                return m1 < m2
            """
        )
        assert len(found) == 1


class TestDecoding:
    def test_decode_with_the_wrong_table_is_an_error(self):
        found = findings_of(
            """
            from repro.topology import VertexTable

            def bad(s1):
                a = VertexTable()
                b = VertexTable()
                m = a.encode_mask_interning(s1)
                return b.decode_mask(m)
            """
        )
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR

    def test_decode_mask_trusted_is_checked_too(self):
        found = findings_of(
            """
            from repro.topology import VertexTable

            def bad(s1):
                a = VertexTable()
                b = VertexTable()
                m = a.encode_mask_interning(s1)
                return b.decode_mask_trusted(m)
            """
        )
        assert len(found) == 1

    def test_decode_with_the_right_table_is_clean(self):
        assert (
            findings_of(
                """
                from repro.topology import VertexTable

                def good(s1):
                    t = VertexTable()
                    m = t.encode_mask_interning(s1)
                    return t.decode_mask(m)
                """
            )
            == []
        )


class TestMemoKeys:
    def test_table_id_paired_with_foreign_mask_fires(self):
        found = findings_of(
            """
            from repro.topology import VertexTable

            def bad(s1, memo):
                a = VertexTable()
                b = VertexTable()
                m = b.encode_mask_interning(s1)
                memo[(a.table_id, m)] = s1
            """
        )
        assert len(found) == 1

    def test_matching_memo_key_is_clean(self):
        assert (
            findings_of(
                """
                from repro.topology import VertexTable

                def good(s1, memo):
                    t = VertexTable()
                    m = t.encode_mask_interning(s1)
                    memo[(t.table_id, m)] = s1
                """
            )
            == []
        )


class TestFlowSensitivity:
    def test_rebinding_to_the_right_table_clears_the_mix(self):
        assert (
            findings_of(
                """
                from repro.topology import VertexTable

                def good(s1):
                    a = VertexTable()
                    b = VertexTable()
                    m = a.encode_mask_interning(s1)
                    m = b.encode_mask_interning(s1)
                    return b.decode_mask(m)
                """
            )
            == []
        )

    def test_mix_through_a_loop_carried_variable(self):
        found = findings_of(
            """
            from repro.topology import VertexTable

            def bad(simplices):
                a = VertexTable()
                b = VertexTable()
                acc = a.full_mask
                for s in simplices:
                    acc = acc | b.encode_mask_interning(s)
                return acc
            """
        )
        assert len(found) >= 1


class TestSymbolicOrigins:
    def test_symbolic_mix_is_a_warning_not_an_error(self):
        found = findings_of(
            """
            from repro.topology import VertexTable

            def maybe(holder, s1):
                a = VertexTable()
                m1 = a.encode_mask_interning(s1)
                m2 = holder.table.encode_mask(s1)
                return m1 | m2
            """
        )
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_unknown_origins_never_report(self):
        assert (
            findings_of(
                """
                def opaque(m1, m2):
                    return m1 | m2
                """
            )
            == []
        )
