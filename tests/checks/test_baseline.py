"""Baseline round-trips and the flow_report baseline workflow."""

import json

import pytest

from repro.checks.audit import flow_report
from repro.checks.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    save_baseline,
)
from repro.checks.findings import Finding, Severity

MIXING = """\
from repro.topology import VertexTable

def bad(s1, s2):
    a = VertexTable()
    b = VertexTable()
    return a.encode_mask_interning(s1) | b.encode_mask_interning(s2)
"""


def finding(path="src/x.py:12", message="m", rule="RPR006"):
    return Finding(rule, Severity.ERROR, path, message)


class TestFingerprint:
    def test_line_number_is_stripped(self):
        assert fingerprint(finding("src/x.py:12")) == fingerprint(
            finding("src/x.py:99")
        )

    def test_file_rule_and_message_all_matter(self):
        base = fingerprint(finding())
        assert fingerprint(finding(path="src/y.py:12")) != base
        assert fingerprint(finding(message="other")) != base
        assert fingerprint(finding(rule="RPR007")) != base


class TestRoundTrip:
    def test_save_then_load_preserves_fingerprints(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        findings = [finding("a.py:1", "one"), finding("b.py:2", "two")]
        assert save_baseline(path, findings) == 2
        assert load_baseline(path) == {
            fingerprint(f) for f in findings
        }

    def test_file_is_deterministic_and_sorted(self, tmp_path):
        first = str(tmp_path / "one.json")
        second = str(tmp_path / "two.json")
        findings = [finding("b.py:2", "two"), finding("a.py:1", "one")]
        save_baseline(first, findings)
        save_baseline(second, list(reversed(findings)))
        assert (
            (tmp_path / "one.json").read_text()
            == (tmp_path / "two.json").read_text()
        )

    def test_duplicates_collapse(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        assert (
            save_baseline(path, [finding("a.py:1"), finding("a.py:8")])
            == 1
        )

    def test_malformed_file_raises_value_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(str(path))


class TestApply:
    def test_grandfathered_findings_are_split_out(self):
        old, new = finding("a.py:1", "old"), finding("a.py:2", "new")
        kept, suppressed = apply_baseline(
            [old, new], {fingerprint(old)}
        )
        assert kept == [new]
        assert suppressed == 1

    def test_line_moves_stay_baselined(self):
        moved = finding("a.py:41", "old")
        kept, suppressed = apply_baseline(
            [moved], {fingerprint(finding("a.py:7", "old"))}
        )
        assert kept == [] and suppressed == 1


class TestFlowReportWorkflow:
    def test_update_baseline_records_debt_and_reports_clean(
        self, tmp_path
    ):
        source = tmp_path / "module.py"
        source.write_text(MIXING)
        baseline = str(tmp_path / "baseline.json")

        recorded = flow_report(
            [str(source)], baseline_path=baseline, update_baseline=True
        )
        assert recorded.is_clean()

        gated = flow_report([str(source)], baseline_path=baseline)
        assert gated.is_clean()
        assert gated.baselined == 1
        assert gated.files_analyzed == 1

    def test_new_findings_still_gate_after_baselining(self, tmp_path):
        source = tmp_path / "module.py"
        source.write_text(MIXING)
        baseline = str(tmp_path / "baseline.json")
        flow_report(
            [str(source)], baseline_path=baseline, update_baseline=True
        )

        source.write_text(
            MIXING
            + "\ndef worse(s1):\n"
            "    a = VertexTable()\n"
            "    b = VertexTable()\n"
            "    return b.decode_mask(a.encode_mask_interning(s1))\n"
        )
        gated = flow_report([str(source)], baseline_path=baseline)
        assert not gated.is_clean()
        assert gated.baselined == 1
        assert gated.exit_code(Severity.ERROR) == 1

    def test_missing_baseline_file_means_empty_baseline(self, tmp_path):
        source = tmp_path / "module.py"
        source.write_text(MIXING)
        report = flow_report(
            [str(source)], baseline_path=str(tmp_path / "absent.json")
        )
        assert not report.is_clean()

    def test_malformed_baseline_surfaces_as_a_finding(self, tmp_path):
        source = tmp_path / "module.py"
        source.write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text("[]")
        report = flow_report(
            [str(source)], baseline_path=str(baseline)
        )
        assert [f.rule_id for f in report.findings] == ["RPR000"]
        assert report.worst is Severity.ERROR
