"""RPR007/RPR008 — determinism of iteration orders and ambient inputs."""

import textwrap

from repro.checks.flow import analyze_source


def rule_ids(code, module="repro.experiments.fixture"):
    return [
        f.rule_id
        for f in analyze_source(
            textwrap.dedent(code), path="fixture.py", module=module
        )
    ]


class TestRPR007UnorderedFlow:
    def test_set_loop_feeding_append_fires(self):
        assert rule_ids(
            """
            def bad(items):
                out = []
                for item in set(items):
                    out.append(item)
                return out
            """
        ) == ["RPR007"]

    def test_set_literal_loop_with_yield_fires(self):
        assert rule_ids(
            """
            def bad(a, b):
                for item in {a, b}:
                    yield item
            """
        ) == ["RPR007"]

    def test_list_of_set_fires(self):
        assert rule_ids(
            """
            def bad(items):
                s = frozenset(items)
                return list(s)
            """
        ) == ["RPR007"]

    def test_join_of_set_fires(self):
        assert rule_ids(
            """
            def bad(items):
                s = set(items)
                return ",".join(s)
            """
        ) == ["RPR007"]

    def test_comprehension_over_set_fires(self):
        assert rule_ids(
            """
            def bad(items):
                s = set(items)
                return [item for item in s]
            """
        ) == ["RPR007"]

    def test_sorted_launders_the_order(self):
        assert (
            rule_ids(
                """
                def good(items):
                    out = []
                    for item in sorted(set(items)):
                        out.append(item)
                    return list(sorted(set(items)))
                """
            )
            == []
        )

    def test_membership_and_set_algebra_are_fine(self):
        assert (
            rule_ids(
                """
                def good(items, probe):
                    s = set(items)
                    t = s | {probe}
                    return probe in t, len(t)
                """
            )
            == []
        )

    def test_side_effect_free_loop_is_fine(self):
        assert (
            rule_ids(
                """
                def good(items):
                    total = 0
                    for item in set(items):
                        total += item
                    return total
                """
            )
            == []
        )


class TestRPR008PurePaths:
    def test_unseeded_random_fires_in_pure_package(self):
        assert rule_ids(
            """
            import random

            def bad(items):
                random.shuffle(items)
                return items
            """,
            module="repro.core.fixture",
        ) == ["RPR008"]

    def test_seeded_random_instance_is_allowed(self):
        assert (
            rule_ids(
                """
                import random

                def good(items, seed):
                    rng = random.Random(seed)
                    rng.shuffle(items)
                    return items
                """,
                module="repro.core.fixture",
            )
            == []
        )

    def test_wall_clock_fires_in_pure_package(self):
        assert rule_ids(
            """
            import time

            def bad():
                return time.monotonic()
            """,
            module="repro.topology.fixture",
        ) == ["RPR008"]

    def test_from_import_resolves_too(self):
        assert rule_ids(
            """
            from time import perf_counter

            def bad():
                return perf_counter()
            """,
            module="repro.core.fixture",
        ) == ["RPR008"]

    def test_id_keyed_sort_fires(self):
        assert rule_ids(
            """
            def bad(items):
                return sorted(items, key=id)
            """,
            module="repro.core.fixture",
        ) == ["RPR008"]

    def test_rule_is_silent_outside_the_pure_packages(self):
        assert (
            rule_ids(
                """
                import random

                def fine(items):
                    random.shuffle(items)
                    return items
                """,
                module="repro.experiments.fixture",
            )
            == []
        )
