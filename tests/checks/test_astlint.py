"""Each RPR lint rule must detect its violation (and only then)."""

import textwrap

from repro.checks import lint_source
from repro.checks.astlint import LINT_RULES


def lint(code, module="repro.experiments.fixture"):
    """Lint a dedented snippet as if it were the given module."""
    return lint_source(
        textwrap.dedent(code), path="fixture.py", module=module
    )


def rule_ids(code, module="repro.experiments.fixture"):
    return {finding.rule_id for finding in lint(code, module=module)}


class TestFramework:
    def test_all_five_rules_registered(self):
        assert sorted(LINT_RULES) == [
            f"RPR00{i}" for i in range(1, 6)
        ]

    def test_syntax_error_reported_not_raised(self):
        findings = lint("def broken(:\n    pass\n")
        assert [f.rule_id for f in findings] == ["RPR000"]

    def test_clean_module_is_clean(self):
        assert rule_ids(
            """
            from repro.topology.complex import SimplicialComplex

            def build(facets):
                return SimplicialComplex(list(facets))
            """
        ) == set()


class TestRPR001InterningSafety:
    def test_mutating_foreign_facets_fires(self):
        assert rule_ids(
            """
            def corrupt(complex_, facets):
                complex_._facets = facets
            """
        ) == {"RPR001"}

    def test_augmented_assignment_fires(self):
        assert rule_ids(
            """
            def corrupt(simplex, extra):
                simplex._vertices += (extra,)
            """
        ) == {"RPR001"}

    def test_owning_module_may_assign(self):
        code = """
        class SimplicialComplex:
            def __init__(self, facets):
                self._facets = facets
        """
        assert rule_ids(code, module="repro.topology.complex") == set()
        assert rule_ids(code, module="repro.core.solvability") == {
            "RPR001"
        }

    def test_self_assignment_of_generic_name_allowed(self):
        # `_color` is generic enough that a foreign class may own one.
        assert rule_ids(
            """
            class Painter:
                def __init__(self, color):
                    self._color = color
            """
        ) == set()

    def test_non_self_generic_name_fires(self):
        assert rule_ids(
            """
            def repaint(vertex, color):
                vertex._color = color
            """
        ) == {"RPR001"}


class TestRPR002FromMaximal:
    def test_pruning_constructor_on_facets_fires(self):
        assert rule_ids(
            """
            def rebuild(complex_, SimplicialComplex):
                return SimplicialComplex(complex_.facets)
            """
        ) == {"RPR002"}

    def test_facets_containing_fires(self):
        assert rule_ids(
            """
            def star(complex_, v, SimplicialComplex):
                return SimplicialComplex(complex_.facets_containing(v))
            """
        ) == {"RPR002"}

    def test_merged_families_are_fine(self):
        assert rule_ids(
            """
            def union(a, b, SimplicialComplex):
                return SimplicialComplex(list(a.facets) + list(b.facets))
            """
        ) == set()

    def test_from_maximal_is_fine(self):
        assert rule_ids(
            """
            def rebuild(complex_, SimplicialComplex):
                return SimplicialComplex.from_maximal(complex_.facets)
            """
        ) == set()


class TestRPR003CounterPlacement:
    def test_counter_in_function_fires(self):
        assert rule_ids(
            """
            from repro.instrumentation import counter

            def hot_path():
                stats = counter("my-cache")
                stats.hit()
            """
        ) == {"RPR003"}

    def test_module_level_counter_is_fine(self):
        assert rule_ids(
            """
            from repro.instrumentation import counter

            _STATS = counter("my-cache")

            def hot_path():
                _STATS.hit()
            """
        ) == set()

    def test_unrelated_counter_function_ignored(self):
        # Only fires when `counter` is imported from repro.instrumentation.
        assert rule_ids(
            """
            from collections import Counter as counter

            def tally(items):
                return counter(items)
            """
        ) == set()

    def test_suppression_comment_honored(self):
        assert rule_ids(
            """
            from repro.instrumentation import counter

            class Model:
                def lazy_init(self):
                    self._stats = counter(  # norpr: RPR003
                        "per-instance"
                    )
            """
        ) == set()


class TestRPR004ExceptionHygiene:
    def test_bare_except_fires_anywhere(self):
        assert rule_ids(
            """
            def run(step):
                try:
                    step()
                except:
                    return None
            """,
            module="repro.experiments.fixture",
        ) == {"RPR004"}

    def test_silent_pass_fires_in_hot_package(self):
        code = """
        def solve(problem: object) -> object:
            try:
                return problem.solve()
            except ValueError:
                pass
        """
        assert rule_ids(code, module="repro.core.solvability") == {
            "RPR004"
        }

    def test_silent_pass_tolerated_outside_hot_packages(self):
        code = """
        def best_effort(step):
            try:
                step()
            except OSError:
                pass
        """
        assert rule_ids(code, module="repro.cli") == set()


class TestRPR005Annotations:
    def test_unannotated_public_function_fires(self):
        code = """
        def facets_of(complex_):
            return complex_.facets
        """
        findings = lint(code, module="repro.topology.fixture")
        assert {f.rule_id for f in findings} == {"RPR005"}
        assert "complex_" in findings[0].message
        assert "return" in findings[0].message

    def test_annotated_function_is_fine(self):
        assert rule_ids(
            """
            def double(value: int) -> int:
                return 2 * value
            """,
            module="repro.core.fixture",
        ) == set()

    def test_private_and_nested_functions_exempt(self):
        assert rule_ids(
            """
            def _helper(value):
                return value

            def public(value: int) -> int:
                def closure(x):
                    return x
                return closure(value)
            """,
            module="repro.models.fixture",
        ) == set()

    def test_methods_are_checked_and_self_exempt(self):
        code = """
        class Engine:
            def solve(self, problem):
                return problem
        """
        findings = lint(code, module="repro.core.fixture")
        assert {f.rule_id for f in findings} == {"RPR005"}
        assert "self" not in findings[0].message

    def test_outside_hot_packages_not_checked(self):
        assert rule_ids(
            """
            def untyped(value):
                return value
            """,
            module="repro.experiments.fixture",
        ) == set()


class TestUnusedSuppressions:
    """Stale ``# norpr:`` comments are themselves findings (RPR000)."""

    BARE = """
        def swallow(action):
            try:
                action()
            except:
                pass
    """

    def test_used_suppression_is_not_reported(self):
        import repro.checks.flow  # noqa: F401  (populates EXTERNAL_RPR_IDS)

        code = self.BARE.replace("except:", "except:  # norpr: RPR004")
        assert rule_ids(code) == set()

    def test_stale_known_id_is_reported(self):
        findings = lint(
            """
            def fine(x):
                return x  # norpr: RPR004
            """
        )
        assert [f.rule_id for f in findings] == ["RPR000"]
        assert "suppresses no finding" in findings[0].message

    def test_unknown_id_is_reported_as_undefined(self):
        findings = lint(
            """
            def fine(x):
                return x  # norpr: RPR999
            """
        )
        assert [f.rule_id for f in findings] == ["RPR000"]
        assert "no engine defines" in findings[0].message

    def test_flow_owned_ids_are_left_to_the_flow_engine(self):
        import repro.checks.flow  # noqa: F401

        assert rule_ids(
            """
            def fine(x):
                return x  # norpr: RPR006
            """
        ) == set()

    def test_all_wildcard_is_exempt_from_staleness(self):
        assert rule_ids(
            """
            def fine(x):
                return x  # norpr: all
            """
        ) == set()

    def test_docstring_example_is_not_a_suppression(self):
        assert rule_ids(
            '''
            def documented(x):
                """Use ``# norpr: RPR004`` to silence this."""
                return x
            '''
        ) == set()
