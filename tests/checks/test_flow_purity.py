"""RPR009 — functions shipped to pool workers must stay pure."""

import textwrap

from repro.checks.flow import analyze_source


def rule_ids(code, module="repro.experiments.fixture"):
    return [
        f.rule_id
        for f in analyze_source(
            textwrap.dedent(code), path="fixture.py", module=module
        )
    ]


class TestUnpicklableCallables:
    def test_lambda_shipped_to_parallel_map_fires(self):
        assert rule_ids(
            """
            from repro.parallel import parallel_map

            def run(items):
                return parallel_map(lambda x: x + 1, items)
            """
        ) == ["RPR009"]

    def test_nested_function_shipped_fires(self):
        assert rule_ids(
            """
            from repro.parallel import parallel_map

            def run(items, offset):
                def shifted(x):
                    return x + offset
                return parallel_map(shifted, items)
            """
        ) == ["RPR009"]

    def test_module_level_function_is_fine(self):
        assert (
            rule_ids(
                """
                from repro.parallel import parallel_map

                def worker(x):
                    return x + 1

                def run(items):
                    return parallel_map(worker, items)
                """
            )
            == []
        )


class TestWorkerBodyImpurity:
    def test_global_mutation_in_shipped_function_fires(self):
        assert rule_ids(
            """
            from repro.parallel import parallel_map

            COUNTER = 0

            def worker(x):
                global COUNTER
                COUNTER += 1
                return x

            def run(items):
                return parallel_map(worker, items)
            """
        ) == ["RPR009"]

    def test_ambient_worker_config_read_fires(self):
        assert rule_ids(
            """
            from repro.parallel import parallel_map
            from repro.parallel.pool import resolve_workers

            def worker(x):
                return x * resolve_workers(None)

            def run(items):
                return parallel_map(worker, items)
            """
        ) == ["RPR009"]

    def test_workers_env_constant_read_fires(self):
        assert rule_ids(
            """
            import os

            from repro.parallel import parallel_map

            def worker(x):
                return x if os.environ.get("REPRO_WORKERS") else -x

            def run(items):
                return parallel_map(worker, items)
            """
        ) == ["RPR009"]

    def test_reading_globals_without_writing_is_fine(self):
        assert (
            rule_ids(
                """
                from repro.parallel import parallel_map

                SCALE = 3

                def worker(x):
                    return x * SCALE

                def run(items):
                    return parallel_map(worker, items)
                """
            )
            == []
        )


class TestExecutorMethods:
    def test_pool_submit_of_lambda_fires(self):
        assert rule_ids(
            """
            def run(pool, items):
                return [pool.submit(lambda x: x, i) for i in items]
            """
        ) == ["RPR009"]

    def test_executor_map_of_nested_function_fires(self):
        assert rule_ids(
            """
            def run(executor, items):
                def inner(x):
                    return x
                return executor.map(inner, items)
            """
        ) == ["RPR009"]

    def test_unrelated_submit_receivers_are_ignored(self):
        assert (
            rule_ids(
                """
                def run(form, items):
                    return form.submit(lambda x: x, items)
                """
            )
            == []
        )

    def test_imported_workers_are_left_alone(self):
        # Intraprocedural: a name imported from elsewhere cannot be
        # inspected, so the rule stays quiet rather than guessing.
        assert (
            rule_ids(
                """
                from repro.parallel import parallel_map
                from repro.models.solvers import solve_one

                def run(items):
                    return parallel_map(solve_one, items)
                """
            )
            == []
        )


class TestSupervisedShipping:
    """supervised_map ships two callables: the fn and ``fallback=``."""

    def test_lambda_shipped_to_supervised_map_fires(self):
        assert rule_ids(
            """
            from repro.parallel import supervised_map

            def run(items):
                return supervised_map(lambda x: x + 1, items)
            """
        ) == ["RPR009"]

    def test_lambda_fallback_fires(self):
        # Seeded mutant for the keyword-shipping extension: a lambda
        # fallback only runs on a failing task's *final* attempt, the
        # worst moment to hit an opaque PicklingError.
        assert rule_ids(
            """
            from repro.parallel import supervised_map

            def worker(x):
                return x + 1

            def run(items):
                return supervised_map(
                    worker, items, fallback=lambda x: 0
                )
            """
        ) == ["RPR009"]

    def test_nested_fallback_fires(self):
        assert rule_ids(
            """
            from repro.parallel import supervised_map

            def worker(x):
                return x + 1

            def run(items, default):
                def rescue(x):
                    return default
                return supervised_map(
                    worker, items, fallback=rescue
                )
            """
        ) == ["RPR009"]

    def test_impure_fallback_body_fires(self):
        assert rule_ids(
            """
            from repro.parallel import supervised_map

            FAILURES = 0

            def worker(x):
                return x + 1

            def rescue(x):
                global FAILURES
                FAILURES += 1
                return 0

            def run(items):
                return supervised_map(
                    worker, items, fallback=rescue
                )
            """
        ) == ["RPR009"]

    def test_both_callables_impure_fires_twice(self):
        assert rule_ids(
            """
            from repro.parallel import supervised_map

            def run(items):
                def inner(x):
                    return x
                return supervised_map(
                    inner, items, fallback=lambda x: 0
                )
            """
        ) == ["RPR009", "RPR009"]

    def test_pure_module_level_pair_is_fine(self):
        assert (
            rule_ids(
                """
                from repro.parallel import supervised_map

                def worker(x):
                    return x + 1

                def rescue(x):
                    return 0

                def run(items):
                    return supervised_map(
                        worker, items, fallback=rescue
                    )
                """
            )
            == []
        )

    def test_unrelated_keywords_are_not_shipped(self):
        # Only ``fallback`` is pickled into payloads; ``stop_when``
        # runs in the parent and may close over local state freely.
        assert (
            rule_ids(
                """
                from repro.parallel import supervised_map

                def worker(x):
                    return x + 1

                def run(items, target):
                    return supervised_map(
                        worker, items, stop_when=lambda r: r == target
                    )
                """
            )
            == []
        )
