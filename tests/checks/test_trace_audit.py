"""Tests for AUD011: telemetry trace artifact well-formedness."""

import json

from repro.checks import AuditTarget, run_rules, trace_report
from repro.telemetry import (
    ManualClock,
    MetricsRegistry,
    Tracer,
    render_json,
    trace_tree,
)


def findings_for(trace):
    return run_rules([AuditTarget("trace", "test.json", trace)])


def span_node(**overrides):
    node = {
        "name": "s",
        "start": 0.0,
        "end": 1.0,
        "status": "ok",
        "attributes": {},
        "metrics": {},
        "children": [],
    }
    node.update(overrides)
    return node


def valid_trace(*spans):
    return {
        "format": "repro-trace",
        "version": 1,
        "spans": list(spans),
    }


class TestCleanArtifacts:
    def test_recorded_trace_is_clean(self):
        tracer = Tracer(
            clock=ManualClock(tick=1.0), registry=MetricsRegistry()
        )
        with tracer.span("outer", eps="1/8"):
            with tracer.span("inner", round=0):
                tracer.registry.counter("steps").inc()
        assert findings_for(trace_tree(tracer)) == []

    def test_error_status_is_clean(self):
        trace = valid_trace(span_node(status="error"))
        assert findings_for(trace) == []

    def test_empty_spans_list_is_clean(self):
        assert findings_for(valid_trace()) == []


class TestMalformedArtifacts:
    def test_wrong_format(self):
        findings = findings_for({"format": "other", "version": 1})
        assert any("format" in f.message for f in findings)

    def test_wrong_version(self):
        findings = findings_for(
            {"format": "repro-trace", "version": 2, "spans": []}
        )
        assert any("version" in f.message for f in findings)

    def test_missing_spans(self):
        findings = findings_for({"format": "repro-trace", "version": 1})
        assert any("spans" in f.message for f in findings)

    def test_open_span(self):
        findings = findings_for(valid_trace(span_node(end=None)))
        assert any("never closed" in f.message for f in findings)

    def test_negative_duration(self):
        findings = findings_for(
            valid_trace(span_node(start=2.0, end=1.0))
        )
        assert any("exceeds end" in f.message for f in findings)

    def test_non_numeric_timestamps(self):
        findings = findings_for(valid_trace(span_node(start="zero")))
        assert any("numeric" in f.message for f in findings)

    def test_child_escapes_parent_interval(self):
        child = span_node(name="child", start=0.5, end=3.0)
        findings = findings_for(
            valid_trace(span_node(name="parent", children=[child]))
        )
        assert any("escapes" in f.message for f in findings)

    def test_unserializable_attribute(self):
        findings = findings_for(
            valid_trace(span_node(attributes={"bad": object()}))
        )
        assert any("JSON-serializable" in f.message for f in findings)

    def test_non_numeric_metric(self):
        findings = findings_for(
            valid_trace(span_node(metrics={"m": "three"}))
        )
        assert any("numeric" in f.message for f in findings)

    def test_bad_status(self):
        findings = findings_for(valid_trace(span_node(status="maybe")))
        assert any("status" in f.message for f in findings)

    def test_missing_name(self):
        findings = findings_for(valid_trace(span_node(name="")))
        assert any("name" in f.message for f in findings)


class TestTraceReport:
    def test_file_roundtrip(self, tmp_path):
        tracer = Tracer(
            clock=ManualClock(tick=1.0), registry=MetricsRegistry()
        )
        with tracer.span("root"):
            pass
        path = tmp_path / "trace.json"
        path.write_text(render_json(tracer) + "\n", encoding="utf-8")
        report = trace_report([str(path)])
        assert report.is_clean()
        assert report.targets_audited == 1

    def test_unreadable_file_is_a_finding(self, tmp_path):
        report = trace_report([str(tmp_path / "missing.json")])
        assert not report.is_clean()
        assert any("cannot read" in f.message for f in report.findings)

    def test_non_json_file_is_a_finding(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json", encoding="utf-8")
        report = trace_report([str(path)])
        assert any("not JSON" in f.message for f in report.findings)

    def test_one_bad_artifact_does_not_mask_others(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(
            json.dumps(valid_trace(span_node())), encoding="utf-8"
        )
        bad = tmp_path / "bad.json"
        bad.write_text("nope", encoding="utf-8")
        report = trace_report([str(bad), str(good)])
        assert report.targets_audited == 1  # the good one was audited
        assert len(report.findings) == 1  # only the bad one reported
