"""Engine-level behaviour of the flow analysis: suppressions, errors,
registration, and the tier-1 self-analysis gate."""

import textwrap
from pathlib import Path

from repro.checks import astlint
from repro.checks.findings import Severity
from repro.checks.flow import (
    FLOW_RULE_IDS,
    FLOW_RULES,
    analyze_paths,
    analyze_source,
)

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def analyze(code, module="repro.experiments.fixture"):
    return analyze_source(
        textwrap.dedent(code), path="fixture.py", module=module
    )


class TestRegistration:
    def test_all_four_flow_rules_registered(self):
        assert sorted(FLOW_RULES) == [
            "RPR006",
            "RPR007",
            "RPR008",
            "RPR009",
        ]
        assert FLOW_RULE_IDS == frozenset(FLOW_RULES)

    def test_flow_ids_are_declared_external_to_the_lint(self):
        assert FLOW_RULE_IDS <= astlint.EXTERNAL_RPR_IDS


class TestErrors:
    def test_syntax_error_is_reported_not_raised(self):
        findings = analyze("def broken(:\n    pass\n")
        assert [f.rule_id for f in findings] == ["RPR000"]
        assert findings[0].severity is Severity.ERROR


class TestSuppressions:
    MIX = """
        from repro.topology import VertexTable

        def bad(s1, s2):
            a = VertexTable()
            b = VertexTable()
            m1 = a.encode_mask_interning(s1)
            m2 = b.encode_mask_interning(s2)
            return m1 | m2{suffix}
        """

    def test_norpr_silences_a_flow_finding(self):
        assert analyze(self.MIX.format(suffix="  # norpr: RPR006")) == []

    def test_all_wildcard_silences_too(self):
        assert analyze(self.MIX.format(suffix="  # norpr: all")) == []

    def test_stale_flow_suppression_is_reported(self):
        findings = analyze(
            """
            def fine(x):
                return x + 1  # norpr: RPR006
            """
        )
        assert [f.rule_id for f in findings] == ["RPR000"]
        assert findings[0].severity is Severity.WARNING
        assert "RPR006" in findings[0].message

    def test_docstring_example_is_not_a_suppression(self):
        # ``# norpr:`` quoted in a docstring must neither suppress nor
        # count as a stale suppression — only real comment tokens do.
        assert (
            analyze(
                '''
                def documented(x):
                    """Silence with ``# norpr: RPR006`` on the line."""
                    return x
                '''
            )
            == []
        )

    def test_lint_ids_are_not_claimed_by_the_flow_engine(self):
        # RPR004 staleness belongs to the lint; the flow engine must
        # not double-report it.
        assert (
            analyze(
                """
                def fine(x):
                    return x  # norpr: RPR004
                """
            )
            == []
        )


class TestSelfAnalysis:
    def test_src_repro_has_no_flow_errors(self):
        """Tier-1 gate: the library's own source obeys its own rules."""
        findings = analyze_paths([str(SRC)])
        errors = [f for f in findings if f.severity >= Severity.ERROR]
        assert errors == [], [f.as_dict() for f in errors]

    def test_checks_package_analyzes_itself_warning_free(self):
        findings = analyze_paths([str(SRC / "checks")])
        assert findings == [], [f.as_dict() for f in findings]
