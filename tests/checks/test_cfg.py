"""Structural tests for the bug-finding CFG lowering."""

import ast
import textwrap

from repro.checks.cfg import build_cfg, iter_elements


def cfg_of(code):
    """Build the CFG of the first function in a dedented snippet."""
    tree = ast.parse(textwrap.dedent(code))
    region = tree.body[0]
    assert isinstance(region, ast.FunctionDef)
    return build_cfg(region)


def element_kinds(cfg):
    return [type(e).__name__ for e in iter_elements(cfg)]


class TestStraightLine:
    def test_single_block_entry_to_exit(self):
        cfg = cfg_of(
            """
            def f(x):
                y = x + 1
                return y
            """
        )
        assert cfg.entry.elements and cfg.entry.successors == [cfg.exit]
        assert element_kinds(cfg) == ["Assign", "Return"]

    def test_module_region_is_accepted(self):
        tree = ast.parse("a = 1\nb = a\n")
        cfg = build_cfg(tree)
        assert element_kinds(cfg) == ["Assign", "Assign"]


class TestBranching:
    def test_if_else_forms_a_diamond(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        # Header has two successors; both arms feed one join block.
        header = cfg.entry
        assert len(header.successors) == 2
        joins = {
            successor
            for arm in header.successors
            for successor in arm.successors
        }
        assert len(joins) == 1

    def test_if_without_else_falls_through(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    a = 1
                return x
            """
        )
        preds = cfg.predecessors()
        return_block = next(
            b
            for b in cfg.blocks
            if any(isinstance(e, ast.Return) for e in b.elements)
        )
        assert len(preds[return_block.index]) == 2

    def test_both_arms_terminating_yields_no_fallthrough(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    return 1
                else:
                    return 2
            """
        )
        assert all(
            cfg.exit in b.successors or not b.elements or b is cfg.exit
            for b in cfg.blocks
            if any(isinstance(e, ast.Return) for e in b.elements)
        )


class TestLoops:
    def test_while_has_back_edge(self):
        cfg = cfg_of(
            """
            def f(n):
                while n:
                    n = n - 1
                return n
            """
        )
        header = next(
            b
            for b in cfg.blocks
            if b.elements and isinstance(b.elements[0], ast.Name)
        )
        preds = cfg.predecessors()
        # entry edge + back edge from the body.
        assert len(preds[header.index]) == 2

    def test_for_node_is_the_header_element(self):
        cfg = cfg_of(
            """
            def f(items):
                out = []
                for item in items:
                    out.append(item)
                return out
            """
        )
        headers = [
            b
            for b in cfg.blocks
            if any(isinstance(e, ast.For) for e in b.elements)
        ]
        assert len(headers) == 1
        # The loop body is lowered into its own blocks, not the header.
        assert len(headers[0].elements) == 1

    def test_break_edges_to_loop_exit(self):
        cfg = cfg_of(
            """
            def f(items):
                for item in items:
                    break
                return 1
            """
        )
        break_block = next(
            b
            for b in cfg.blocks
            if any(isinstance(e, ast.Break) for e in b.elements)
        )
        header = next(
            b
            for b in cfg.blocks
            if any(isinstance(e, ast.For) for e in b.elements)
        )
        # break must NOT edge back to the header.
        assert header not in break_block.successors

    def test_continue_edges_to_loop_header(self):
        cfg = cfg_of(
            """
            def f(items):
                for item in items:
                    continue
                return 1
            """
        )
        continue_block = next(
            b
            for b in cfg.blocks
            if any(isinstance(e, ast.Continue) for e in b.elements)
        )
        header = next(
            b
            for b in cfg.blocks
            if any(isinstance(e, ast.For) for e in b.elements)
        )
        assert header in continue_block.successors


class TestExceptionalFlow:
    def test_handler_reachable_from_body_entry(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    y = x()
                except ValueError:
                    y = 0
                return y
            """
        )
        body_entry = next(
            b
            for b in cfg.blocks
            if any(isinstance(e, ast.Assign) for e in b.elements)
        )
        handler_entry = next(
            b
            for b in cfg.blocks
            if any(
                isinstance(e, ast.Name) and e.id == "ValueError"
                for e in b.elements
            )
        )
        assert handler_entry in body_entry.successors

    def test_finally_runs_on_fallthrough(self):
        cfg = cfg_of(
            """
            def f(x):
                try:
                    y = x()
                finally:
                    z = 1
                return y
            """
        )
        kinds = element_kinds(cfg)
        assert kinds.index("Assign") < kinds.index("Return")
        assert kinds.count("Assign") == 2


class TestUnreachableCode:
    def test_code_after_return_still_gets_elements(self):
        cfg = cfg_of(
            """
            def f(x):
                return x
                y = 1
            """
        )
        assert "Assign" in element_kinds(cfg)

    def test_rpo_covers_every_block(self):
        cfg = cfg_of(
            """
            def f(x):
                if x:
                    return 1
                while x:
                    x -= 1
                return x
                dead = 0
            """
        )
        assert {b.index for b in cfg.rpo()} == {
            b.index for b in cfg.blocks
        }


class TestWith:
    def test_withitem_is_an_element(self):
        cfg = cfg_of(
            """
            def f(opener):
                with opener() as handle:
                    data = handle.read()
                return data
            """
        )
        assert any(
            isinstance(e, ast.withitem) for e in iter_elements(cfg)
        )
