"""Every audit rule must actually detect its violation.

Each test forges one deliberately broken object — a non-chromatic
complex, a non-maximal facet family, a non-monotone carrier map, a
condition-violating schedule, a stale memo entry, an ill-formed task, a
shrinking closure — and asserts that exactly the expected rule id fires.
Forgeries bypass the constructors on purpose (``object.__new__`` /
``from_maximal``): the auditor exists precisely to catch objects the
constructors never saw.
"""

from fractions import Fraction

import pytest

from repro.checks import AuditTarget, Severity, run_rules
from repro.checks.rules import RULES, rules_for_kind
from repro.models import ImmediateSnapshotModel, IteratedModel
from repro.models.schedules import OneRoundSchedule, schedule_from_blocks
from repro.tasks import approximate_agreement_task, binary_consensus_task
from repro.tasks.task import Task
from repro.topology.carrier import CarrierMap
from repro.topology.complex import SimplicialComplex
from repro.topology.simplex import Simplex
from repro.topology.vertex import Vertex


def fired_rules(targets):
    return {finding.rule_id for finding in run_rules(targets)}


def forge_simplex(vertices):
    """Build a Simplex without the chromaticity-checking constructor."""
    forged = object.__new__(Simplex)
    ordered = tuple(vertices)
    forged._vertices = ordered
    forged._hash = hash(ordered)
    return forged


def forge_schedule(groups, views):
    """Build a OneRoundSchedule without running __post_init__."""
    forged = object.__new__(OneRoundSchedule)
    object.__setattr__(forged, "groups", tuple(groups))
    object.__setattr__(forged, "views", tuple(views))
    return forged


class TestRegistry:
    def test_all_sixteen_rules_registered(self):
        assert sorted(RULES) == [
            f"AUD00{i}" for i in range(1, 10)
        ] + [
            "AUD010",
            "AUD011",
            "AUD012",
            "AUD013",
            "AUD014",
            "AUD015",
            "AUD016",
        ]

    def test_rules_partition_by_kind(self):
        for kind in (
            "complex",
            "carrier",
            "schedule",
            "task",
            "model",
            "serve",
        ):
            assert rules_for_kind(kind), f"no rules for kind {kind}"

    def test_duplicate_registration_rejected(self):
        from repro.checks.rules import audit_rule

        with pytest.raises(ValueError):
            audit_rule("AUD001", "complex", "dup")(lambda target: iter(()))


class TestComplexRules:
    def test_aud001_fires_on_non_chromatic_complex(self):
        broken = forge_simplex(
            [Vertex(1, "a"), Vertex(1, "b"), Vertex(2, "c")]
        )
        complex_ = SimplicialComplex.from_maximal([broken])
        target = AuditTarget("complex", "fixture/non-chromatic", complex_)
        findings = run_rules([target])
        assert {f.rule_id for f in findings} == {"AUD001"}
        assert findings[0].severity is Severity.ERROR
        assert "repeats a color" in findings[0].message

    def test_aud001_fires_on_non_simplex_facet(self):
        # from_maximal trusts its caller: a bare Vertex sneaks in.
        complex_ = SimplicialComplex.from_maximal([Vertex(1, "a")])
        target = AuditTarget("complex", "fixture/vertex-facet", complex_)
        findings = [
            f for f in run_rules([target]) if f.rule_id == "AUD001"
        ]
        assert findings
        assert "not a Simplex" in findings[0].message

    def test_aud002_fires_on_non_maximal_family(self):
        big = Simplex([(1, "a"), (2, "b")])
        face = Simplex([(1, "a")])
        complex_ = SimplicialComplex.from_maximal([big, face])
        target = AuditTarget("complex", "fixture/non-maximal", complex_)
        assert fired_rules([target]) == {"AUD002"}

    def test_clean_complex_passes(self):
        complex_ = SimplicialComplex([Simplex([(1, "a"), (2, "b")])])
        assert fired_rules(
            [AuditTarget("complex", "fixture/ok", complex_)]
        ) == set()

    def test_aud013_fires_on_corrupt_face_mask_memo(self):
        sigma = Simplex([(1, "a"), (2, "b")])
        tau = Simplex([(1, "a"), (3, "c")])
        complex_ = SimplicialComplex([sigma, tau])
        _, masks = complex_._ensure_index()
        # Corrupt the memoized face-mask set the way an aliasing bug
        # would: membership and the f-vector now disagree with the
        # stored facets, which only the reference cross-check can see.
        complex_._face_masks = {masks[0]}
        target = AuditTarget("complex", "fixture/corrupt-index", complex_)
        findings = [
            f for f in run_rules([target]) if f.rule_id == "AUD013"
        ]
        assert findings
        assert any("contains" in f.message for f in findings)
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_aud013_skips_malformed_families(self):
        # Non-chromatic facets are AUD001's finding; the parity probe
        # must not crash (or double-report) on them.
        broken = forge_simplex([Vertex(1, "a"), Vertex(1, "b")])
        complex_ = SimplicialComplex.from_maximal([broken])
        target = AuditTarget("complex", "fixture/aud001-turf", complex_)
        assert "AUD013" not in fired_rules([target])

    def test_aud016_fires_on_corrupt_mask_index(self):
        sigma = Simplex([(1, "a"), (2, "b")])
        tau = Simplex([(1, "a"), (3, "c")])
        complex_ = SimplicialComplex([sigma, tau])
        _, masks = complex_._ensure_index()
        # Drop a facet from the mask index only: the kernels (which
        # sweep masks) now see a different complex than the oracles
        # (which read the facet objects).
        complex_._masks = (masks[0],)
        target = AuditTarget("complex", "fixture/corrupt-masks", complex_)
        findings = [
            f for f in run_rules([target]) if f.rule_id == "AUD016"
        ]
        assert findings
        assert any("adjacency" in f.message for f in findings)
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_aud016_skips_malformed_families(self):
        broken = forge_simplex([Vertex(1, "a"), Vertex(1, "b")])
        complex_ = SimplicialComplex.from_maximal([broken])
        target = AuditTarget("complex", "fixture/aud001-turf", complex_)
        assert "AUD016" not in fired_rules([target])

    def test_aud016_clean_on_subdivided_complex(self, iis):
        sigma = Simplex([(1, 0), (2, 0), (3, 1)])
        protocol = iis.one_round_complex(sigma)
        target = AuditTarget("complex", "fixture/one-round", protocol)
        findings = [
            f for f in run_rules([target]) if f.rule_id == "AUD016"
        ]
        assert findings == []


class TestCarrierRules:
    def test_aud003_fires_on_name_violation(self):
        sigma = Simplex([(1, "a"), (2, "b")])
        domain = SimplicialComplex.from_simplex(sigma)
        leaky = CarrierMap(
            domain,
            lambda s: SimplicialComplex(
                [Simplex([(3, "stray")])]
            ),
            name="leaky",
        )
        target = AuditTarget("carrier", "fixture/leaky", leaky)
        assert "AUD003" in fired_rules([target])

    def test_aud004_fires_on_non_monotone_carrier(self):
        sigma = Simplex([(1, "a"), (2, "b")])
        domain = SimplicialComplex.from_simplex(sigma)

        def delta(simplex):
            if simplex.dim == 1:
                return SimplicialComplex([Simplex([(1, "x")])])
            # Faces get an output the full simplex does not have.
            color = simplex.vertices[0].color
            return SimplicialComplex([Simplex([(color, "y")])])

        shrinking = CarrierMap(domain, delta, name="shrinking")
        target = AuditTarget(
            "carrier",
            "fixture/non-monotone",
            shrinking,
            {"expect_monotone": True},
        )
        assert "AUD004" in fired_rules([target])

    def test_aud004_skipped_without_monotone_expectation(self):
        sigma = Simplex([(1, "a"), (2, "b")])
        domain = SimplicialComplex.from_simplex(sigma)

        def delta(simplex):
            if simplex.dim == 1:
                return SimplicialComplex([Simplex([(1, "x")])])
            color = simplex.vertices[0].color
            return SimplicialComplex([Simplex([(color, "y")])])

        task_map = CarrierMap(domain, delta, name="task-style")
        # Task maps are not required to be monotone (local tasks!).
        target = AuditTarget("carrier", "fixture/task-map", task_map)
        assert "AUD004" not in fired_rules([target])


class TestScheduleRules:
    def test_aud005_fires_on_condition_2_violation(self):
        broken = forge_schedule(
            groups=(frozenset({1, 2}),),
            views=(frozenset({1, 2, 3}),),
        )
        target = AuditTarget(
            "schedule", "fixture/bad-schedule", broken
        )
        findings = run_rules([target])
        assert {f.rule_id for f in findings} == {"AUD005"}
        assert any("condition (2)" in f.message for f in findings)

    def test_aud005_fires_on_condition_3_violation(self):
        broken = forge_schedule(
            groups=(frozenset({1}), frozenset({2})),
            views=(frozenset({1}), frozenset({2})),
        )
        findings = run_rules(
            [AuditTarget("schedule", "fixture/bad-p0", broken)]
        )
        assert any("condition (3)" in f.message for f in findings)

    def test_aud005_fires_on_false_snapshot_claim(self):
        # A valid collect schedule whose views do not chain.
        schedule = OneRoundSchedule(
            groups=(frozenset({1, 2, 3}),),
            views=(frozenset({1, 2, 3}),),
        )
        incomparable = forge_schedule(
            groups=(frozenset({1}), frozenset({2}), frozenset({3})),
            views=(
                frozenset({1, 2, 3}),
                frozenset({1, 2}),
                frozenset({1, 3}),
            ),
        )
        assert fired_rules(
            [
                AuditTarget(
                    "schedule",
                    "fixture/ok",
                    schedule,
                    {"schedule_model": "snapshot"},
                )
            ]
        ) == set()
        findings = run_rules(
            [
                AuditTarget(
                    "schedule",
                    "fixture/not-a-chain",
                    incomparable,
                    {"schedule_model": "snapshot"},
                )
            ]
        )
        assert any("chain" in f.message for f in findings)

    def test_valid_iis_schedule_passes(self):
        schedule = schedule_from_blocks([[1], [2, 3]])
        assert fired_rules(
            [
                AuditTarget(
                    "schedule",
                    "fixture/iis-ok",
                    schedule,
                    {"schedule_model": "iis"},
                )
            ]
        ) == set()


class _NoSoloModel(IteratedModel):
    """A broken model whose one-round complex forgets solo executions."""

    name = "broken-no-solo"

    def _enumerate_view_maps(self, ids):
        # Only the fully synchronous round: every process sees everyone.
        return [{i: frozenset(ids) for i in ids}]


class TestModelRules:
    def test_aud006_fires_on_missing_solo_execution(self):
        model = _NoSoloModel()
        sigma = Simplex([(1, "a"), (2, "b")])
        target = AuditTarget(
            "model", "fixture/no-solo", model, {"samples": (sigma,)}
        )
        findings = [
            f for f in run_rules([target]) if f.rule_id == "AUD006"
        ]
        assert findings
        assert any("solo" in f.message for f in findings)

    def test_aud007_fires_on_stale_memo_entry(self):
        model = ImmediateSnapshotModel()
        sigma = Simplex([(1, "a"), (2, "b")])
        model.one_round_complex(sigma)  # warm the memo honestly
        # Poison the cache the way an accidental in-place mutation would.
        model.seed_one_round(
            sigma, SimplicialComplex.from_simplex(sigma)
        )
        target = AuditTarget("model", "fixture/stale-memo", model, {})
        findings = run_rules([target])
        assert {f.rule_id for f in findings} == {"AUD007"}
        assert "stale memo entry" in findings[0].message

    def test_aud007_clean_after_honest_warmup(self):
        model = ImmediateSnapshotModel()
        sigma = Simplex([(1, "a"), (2, "b")])
        model.one_round_complex(sigma)
        model.view_maps(sigma.ids)
        target = AuditTarget("model", "fixture/warm", model, {})
        assert fired_rules([target]) == set()

    def test_healthy_model_passes_all_probes(self):
        model = ImmediateSnapshotModel()
        sigma = Simplex([(1, "a"), (2, "b"), (3, "c")])
        target = AuditTarget(
            "model", "fixture/healthy", model, {"samples": (sigma,)}
        )
        assert fired_rules([target]) == set()


class TestTaskAndClosureRules:
    def test_aud008_fires_on_outputs_outside_o(self):
        inputs = SimplicialComplex.from_simplex(
            Simplex([(1, 0), (2, 0)])
        )
        outputs = SimplicialComplex.from_simplex(
            Simplex([(1, 0), (2, 0)])
        )
        bad = Task(
            "escaping-outputs",
            inputs,
            outputs,
            lambda sigma: SimplicialComplex(
                [Simplex([(v.color, 9) for v in sigma.vertices])]
            ),
        )
        target = AuditTarget("task", "fixture/escaping", bad)
        findings = run_rules([target])
        assert {f.rule_id for f in findings} == {"AUD008"}

    def test_aud009_fires_when_closure_loses_outputs(self):
        base = binary_consensus_task([1, 2])
        # A fake "closure" that keeps I but forgets every legal output
        # except one monochromatic facet: Δ ⊄ Δ'.
        lossy = Task(
            "lossy-closure",
            base.input_complex,
            base.output_complex,
            lambda sigma: SimplicialComplex(
                [Simplex([(v.color, 0) for v in sigma.vertices])]
            ),
        )
        target = AuditTarget(
            "closure", "fixture/lossy", lossy, {"base_task": base}
        )
        findings = [
            f for f in run_rules([target]) if f.rule_id == "AUD009"
        ]
        assert findings
        assert "closures only grow" in findings[0].message

    def test_real_closure_passes(self):
        from repro.core.closure import closure_task

        base = approximate_agreement_task([1, 2], Fraction(1, 2), 2)
        closure = closure_task(base, ImmediateSnapshotModel())
        target = AuditTarget(
            "closure", "fixture/real-closure", closure, {"base_task": base}
        )
        assert fired_rules([target]) == set()


class TestServeParityRule:
    def test_aud015_clean_on_honest_probes(self):
        target = AuditTarget(
            "serve",
            "fixture/parity",
            [("lower_bound", {"n": 3, "eps": "1/4"})],
        )
        assert fired_rules([target]) == set()

    def test_aud015_fires_when_the_baseline_cannot_run(self):
        # A probe the in-process handlers reject can never be parity
        # checked; the rule must say so rather than pass vacuously.
        target = AuditTarget(
            "serve",
            "fixture/broken-probe",
            [("no_such_method", {})],
        )
        findings = [
            f for f in run_rules([target]) if f.rule_id == "AUD015"
        ]
        assert findings
        assert any(
            "in-process baseline failed" in f.message for f in findings
        )
        assert all(f.severity is Severity.ERROR for f in findings)

    def test_aud015_fires_on_invalid_params(self):
        target = AuditTarget(
            "serve",
            "fixture/bad-params",
            [("lower_bound", {"n": "several"})],
        )
        assert "AUD015" in fired_rules([target])


class TestFaultsConfigRule:
    @staticmethod
    def _target(config):
        return AuditTarget("faults-config", "fixture/chaos-config", config)

    def test_aud010_fires_on_unknown_cell(self):
        from repro.faults.campaign import CampaignConfig

        target = self._target(CampaignConfig(cell="nonsense"))
        findings = run_rules([target])
        assert {f.rule_id for f in findings} == {"AUD010"}
        assert "unknown chaos cell" in findings[0].message

    def test_aud010_fires_on_bad_probability(self):
        from dataclasses import replace

        from repro.faults.campaign import CampaignConfig

        config = replace(CampaignConfig(), crash_probability=1.5)
        assert "AUD010" in fired_rules([self._target(config)])

    def test_aud010_fires_on_unsupported_model(self):
        from repro.faults.campaign import CampaignConfig

        # Black-box cells are IIS-only: matrix schedules have no blocks.
        config = CampaignConfig(cell="consensus", model="collect")
        assert "AUD010" in fired_rules([self._target(config)])

    def test_aud010_fires_on_total_crash_budget(self):
        from repro.faults.campaign import CampaignConfig

        config = CampaignConfig(cell="aa", n=3, t=3)
        assert "AUD010" in fired_rules([self._target(config)])

    def test_aud010_fires_on_ungated_illegal_injector(self):
        from repro.faults.campaign import CampaignConfig

        config = CampaignConfig(cell="aa", illegal="lost-write")
        findings = [
            f
            for f in run_rules([self._target(config)])
            if f.rule_id == "AUD010"
        ]
        assert findings
        assert "allow_illegal" in findings[0].message

    def test_sound_config_passes(self):
        from repro.faults.campaign import CampaignConfig

        target = self._target(CampaignConfig(cell="aa", n=3, t=1))
        assert fired_rules([target]) == set()
