"""The ``repro check`` CLI subcommand: scopes, formats, exit policy."""

import json
import textwrap

from repro.cli import main

BROKEN_MODULE = textwrap.dedent(
    """
    def corrupt(complex_, facets):
        complex_._facets = facets

    def swallow(step):
        try:
            step()
        except:
            pass
    """
)


class TestAuditScopes:
    def test_single_experiment_exits_zero(self, capsys):
        assert main(["check", "E1"]) == 0
        out = capsys.readouterr().out
        assert "audit[E1]" in out
        assert "clean" in out

    def test_all_experiments_exit_zero(self, capsys):
        assert main(["check", "--all"]) == 0
        out = capsys.readouterr().out
        assert "23 experiments" in out

    def test_bare_check_defaults_to_all(self, capsys):
        assert main(["check"]) == 0
        assert "audit[--all]" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self, capsys):
        try:
            main(["check", "E99"])
        except SystemExit as exc:
            assert "unknown experiment" in str(exc)
        else:
            raise AssertionError("expected SystemExit")


class TestLintScope:
    def test_lint_violations_fail(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BROKEN_MODULE)
        assert main(["check", "--lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "RPR004" in out

    def test_fail_on_policy_downgrades(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BROKEN_MODULE)
        # Findings are errors; asking to fail only above error never fires.
        assert (
            main(["check", "--lint", str(tmp_path), "--fail-on", "error"])
            == 1
        )
        capsys.readouterr()
        clean = tmp_path / "clean"
        clean.mkdir()
        (clean / "ok.py").write_text("X = 1\n")
        assert main(["check", "--lint", str(clean)]) == 0

    def test_invalid_fail_on_rejected(self):
        try:
            main(["check", "--fail-on", "fatal"])
        except SystemExit as exc:
            assert "unknown severity" in str(exc)
        else:
            raise AssertionError("expected SystemExit")


class TestJsonFormat:
    def test_json_document_shape(self, capsys):
        assert main(["check", "E4", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["clean"] is True
        assert document["experiments"] == ["E4"]
        assert document["findings"] == []
        assert document["targets_audited"] > 0

    def test_json_reports_lint_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BROKEN_MODULE)
        assert (
            main(["check", "--lint", str(tmp_path), "--format", "json"])
            == 1
        )
        document = json.loads(capsys.readouterr().out)
        assert document["clean"] is False
        assert document["worst_severity"] == "error"
        rules = {finding["rule"] for finding in document["findings"]}
        assert {"RPR001", "RPR004"} <= rules

    def test_combined_lint_and_audit_scope(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text("X = 1\n")
        assert (
            main(["check", "E1", "--lint", str(clean)])
            == 0
        )
        out = capsys.readouterr().out
        assert "lint[" in out
        assert "audit[E1]" in out
