"""One seeded provenance bug, caught by BOTH halves of RPR006.

The mutant below mixes masks across two vertex tables with different
entry orders.  The static flow rule must flag every mix site in its
source, and executing the very same source under ``REPRO_SANITIZE``
must raise :class:`MaskProvenanceError` at the same operations — the
acceptance contract tying :mod:`repro.checks.flowrules.masks` to
:mod:`repro.topology.sanitize`.
"""

import pytest

from repro.checks.findings import Severity
from repro.checks.flow import analyze_source
from repro.errors import MaskProvenanceError
from repro.topology import Simplex
from repro.topology import sanitize

MUTANT = """\
from repro.topology import VertexTable

def mixed_union(s1, s2):
    left = VertexTable([(1, "x"), (2, "y")])
    right = VertexTable([(2, "y"), (1, "x")])
    m1 = left.encode_mask(s1)
    m2 = right.encode_mask(s2)
    return m1 | m2

def wrong_decode(s1):
    left = VertexTable([(1, "x"), (2, "y")])
    right = VertexTable([(2, "y"), (1, "x")])
    return right.decode_mask(left.encode_mask(s1))
"""


def mutant_namespace():
    namespace = {}
    exec(compile(MUTANT, "mutant.py", "exec"), namespace)
    return namespace


class TestStaticHalf:
    def test_every_mix_site_is_flagged_as_rpr006_error(self):
        findings = analyze_source(
            MUTANT, path="mutant.py", module="repro.experiments.mutant"
        )
        rpr006 = [f for f in findings if f.rule_id == "RPR006"]
        lines = sorted(int(f.path.rsplit(":", 1)[-1]) for f in rpr006)
        assert lines == [8, 13]  # the `|` and the decode_mask call
        assert all(f.severity is Severity.ERROR for f in rpr006)


class TestRuntimeHalf:
    def test_bitwise_mix_raises_under_the_sanitizer(self):
        namespace = mutant_namespace()
        s = Simplex([(1, "x"), (2, "y")])
        with sanitize.sanitizer():
            with pytest.raises(MaskProvenanceError, match="RPR006"):
                namespace["mixed_union"](s, s)

    def test_wrong_decode_raises_under_the_sanitizer(self):
        namespace = mutant_namespace()
        s = Simplex([(1, "x"), (2, "y")])
        with sanitize.sanitizer():
            with pytest.raises(MaskProvenanceError, match="RPR006"):
                namespace["wrong_decode"](s)

    def test_record_only_mode_collects_findings_instead(self):
        namespace = mutant_namespace()
        s = Simplex([(1, "x"), (2, "y")])
        sanitize.reset_violations()
        with sanitize.sanitizer(record_only=True):
            namespace["mixed_union"](s, s)
            namespace["wrong_decode"](s)
        found = sanitize.violations()
        sanitize.reset_violations()
        assert len(found) == 2
        assert {f.rule_id for f in found} == {"RPR006"}
        assert all(f.severity is Severity.ERROR for f in found)

    def test_mutant_runs_silently_without_the_sanitizer(self):
        # The whole point of the rule: release mode does NOT catch this.
        namespace = mutant_namespace()
        s = Simplex([(1, "x"), (2, "y")])
        assert isinstance(namespace["mixed_union"](s, s), int)
