"""Deterministic finding order across reporters and engines."""

import json

from repro.checks.audit import CheckReport
from repro.checks.findings import Finding, Severity, sort_findings
from repro.checks.reporters import render_json, render_text


def finding(path, rule="RPR006", severity=Severity.ERROR, message="m"):
    return Finding(rule, severity, path, message)


class TestSortFindings:
    def test_numeric_line_order_not_lexicographic(self):
        nine, ten = finding("src/x.py:9"), finding("src/x.py:10")
        assert sort_findings([ten, nine]) == [nine, ten]

    def test_path_groups_before_line(self):
        a, b = finding("src/a.py:50"), finding("src/b.py:1")
        assert sort_findings([b, a]) == [a, b]

    def test_rule_id_breaks_location_ties(self):
        lint = finding("src/x.py:3", rule="RPR004")
        flow = finding("src/x.py:3", rule="RPR006")
        assert sort_findings([flow, lint]) == [lint, flow]

    def test_worst_severity_first_within_a_rule(self):
        warn = finding("src/x.py:3", severity=Severity.WARNING)
        err = finding("src/x.py:3", severity=Severity.ERROR)
        assert sort_findings([warn, err]) == [err, warn]

    def test_audit_target_paths_sort_by_text(self):
        targets = [
            finding("E7/task[x]/I", rule="AUD001"),
            finding("E10/task[x]/I", rule="AUD001"),
        ]
        assert sort_findings(targets) == sorted(
            targets, key=lambda f: f.path
        )

    def test_idempotent_and_input_order_independent(self):
        findings = [
            finding("src/x.py:10"),
            finding("src/x.py:9"),
            finding("src/a.py:2", rule="RPR007"),
        ]
        once = sort_findings(findings)
        assert sort_findings(once) == once
        assert sort_findings(list(reversed(findings))) == once


class TestReportersUseTheOrder:
    def report(self, findings):
        return CheckReport(scope="test", findings=tuple(findings))

    def test_text_rows_come_out_sorted(self):
        text = render_text(
            self.report(
                [finding("src/x.py:10"), finding("src/x.py:9")]
            )
        )
        assert text.index("src/x.py:9") < text.index("src/x.py:10")

    def test_json_findings_come_out_sorted(self):
        document = json.loads(
            render_json(
                self.report(
                    [finding("src/x.py:10"), finding("src/x.py:9")]
                )
            )
        )
        assert [f["path"] for f in document["findings"]] == [
            "src/x.py:9",
            "src/x.py:10",
        ]

    def test_json_carries_flow_counters(self):
        document = json.loads(
            render_json(
                CheckReport(
                    scope="flow[src]",
                    findings=(),
                    files_analyzed=7,
                    baselined=2,
                )
            )
        )
        assert document["files_analyzed"] == 7
        assert document["baselined"] == 2
