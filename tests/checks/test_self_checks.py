"""The codebase passes its own static analysis (tier-1 gate).

Two self-tests: the AST lint over ``src/`` must be clean, and the domain
audit over every registered experiment's machinery must be clean.  These
are the same checks CI runs via ``repro check``; keeping them in tier-1
means a violation fails the default test run, not just the CI job.
"""

from pathlib import Path

from repro.checks import audit_all, lint_report
from repro.checks.targets import (
    TARGET_GROUPS,
    build_group,
    groups_for_experiment,
)
from repro.experiments.registry import EXPERIMENTS

SRC = Path(__file__).resolve().parents[2] / "src"


class TestSelfLint:
    def test_source_tree_lints_clean(self):
        report = lint_report([str(SRC)])
        assert report.files_linted > 0
        details = "\n".join(
            f"{f.rule_id} {f.path}: {f.message}" for f in report.findings
        )
        assert report.is_clean(), f"RPR violations in src/:\n{details}"


class TestSelfAudit:
    def test_every_experiment_has_audit_targets(self):
        for identifier in EXPERIMENTS:
            groups = groups_for_experiment(identifier)
            assert groups, f"{identifier} maps to no target groups"
            for group in groups:
                assert group in TARGET_GROUPS

    def test_every_group_is_reachable_from_some_experiment(self):
        used = {
            group
            for identifier in EXPERIMENTS
            for group in groups_for_experiment(identifier)
        }
        assert used == set(TARGET_GROUPS)

    def test_groups_build_non_empty(self):
        for name in TARGET_GROUPS:
            assert build_group(name), f"group {name} built no targets"

    def test_full_audit_is_clean(self):
        report = audit_all()
        assert report.targets_audited > 100
        assert report.experiments == tuple(
            sorted(EXPERIMENTS, key=lambda e: int(e[1:]))
        )
        details = "\n".join(
            f"{f.rule_id} {f.path}: {f.message}" for f in report.findings
        )
        assert report.is_clean(), f"audit violations:\n{details}"
