"""Integration tests for the solver service over real sockets.

One shared server (module-scoped, backed by a temp store) covers the
serving-tier contract: byte-identity with the in-process handlers,
store provenance on warm repeats, single-flight coalescing, JSON-RPC
error codes, and warm restarts.  Queries are chosen cheap (consensus
``n=2``, small lower bounds) so the suite stays fast.
"""

import json
import socket
import threading

import pytest

from repro.errors import ServeError
from repro.serve.handlers import execute
from repro.serve.protocol import (
    EXECUTION_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    canonical_json,
    request_digest,
)
from repro.serve.server import ServeConfig
from repro.serve.testing import ServerHandle


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("serve-store"))


@pytest.fixture(scope="module")
def server(store_dir):
    config = ServeConfig(store_dir=store_dir, batch_window=0.005)
    with ServerHandle(config) as handle:
        yield handle


class TestDispatch:
    def test_health(self, server):
        result = server.call("health")
        assert result["status"] == "ok"
        assert "solvability" in result["methods"]

    def test_stats_shape(self, server):
        stats = server.call("stats")
        assert set(stats) >= {
            "protocol",
            "serve",
            "store",
            "store_entries",
            "inflight",
            "batch_queue",
        }

    def test_cold_then_warm_byte_identity(self, server):
        params = {"n": 3, "eps": "1/4"}
        expected = canonical_json(execute("lower_bound", dict(params)))
        with server.connect() as client:
            cold = client.call_raw("lower_bound", dict(params))
            warm = client.call_raw("lower_bound", dict(params))
        assert canonical_json(cold["result"]) == expected
        assert canonical_json(warm["result"]) == expected
        assert cold["served"]["cached"] is False
        assert warm["served"]["cached"] is True

    def test_served_digest_matches_protocol_digest(self, server):
        params = {"n": 3, "eps": "1/16"}
        with server.connect() as client:
            envelope = client.call_raw("lower_bound", dict(params))
        assert envelope["served"]["digest"] == request_digest(
            "lower_bound", params
        )

    def test_solvability_through_the_batch_path(self, server):
        params = {
            "task": "consensus",
            "n": 2,
            "rounds": 1,
            "model": "iis",
        }
        expected = canonical_json(execute("solvability", dict(params)))
        assert (
            canonical_json(server.call("solvability", dict(params)))
            == expected
        )

    def test_closure_parity(self, server):
        params = {"n": 2, "eps": "1/2", "m": 2, "model": "iis"}
        expected = canonical_json(execute("closure", dict(params)))
        assert (
            canonical_json(server.call("closure", dict(params)))
            == expected
        )


class TestCoalescing:
    def test_concurrent_duplicates_coalesce(self, server):
        # rounds=5 keeps this digest out of every other test's cache
        # while the subdivision stays small (3^5 facets).
        params = {
            "task": "consensus",
            "n": 2,
            "rounds": 5,
            "model": "iis",
        }
        before = server.call("stats")["serve"]["coalesced"]
        payloads: list[str] = []
        errors: list[str] = []

        def fire() -> None:
            try:
                payloads.append(
                    canonical_json(server.call("solvability", dict(params)))
                )
            except Exception as exc:  # surfaced via the errors list
                errors.append(str(exc))

        threads = [threading.Thread(target=fire) for _ in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(payloads)) == 1
        after = server.call("stats")["serve"]["coalesced"]
        assert after > before


class TestErrorCodes:
    def test_unknown_method(self, server):
        with server.connect() as client:
            envelope = client.call_raw("no_such_method")
        assert envelope["error"]["code"] == METHOD_NOT_FOUND

    def test_invalid_params(self, server):
        with server.connect() as client:
            envelope = client.call_raw("solvability", {"n": "many"})
        assert envelope["error"]["code"] == INVALID_PARAMS

    def test_execution_error_for_unknown_task(self, server):
        with server.connect() as client:
            envelope = client.call_raw(
                "solvability", {"task": "telepathy", "n": 2}
            )
        assert envelope["error"]["code"] in (
            INVALID_PARAMS,
            EXECUTION_ERROR,
        )

    def test_client_raises_serve_error(self, server):
        with server.connect() as client:
            with pytest.raises(ServeError) as excinfo:
                client.call("no_such_method")
        assert excinfo.value.code == METHOD_NOT_FOUND

    def _raw_exchange(self, server, payload: bytes) -> dict:
        with socket.create_connection(
            (server.config.host, server.port), timeout=30
        ) as sock:
            sock.sendall(payload + b"\n")
            reader = sock.makefile("r", encoding="utf-8")
            return json.loads(reader.readline())

    def test_parse_error_on_garbage(self, server):
        envelope = self._raw_exchange(server, b"{nope")
        assert envelope["error"]["code"] == PARSE_ERROR
        assert envelope["id"] is None

    def test_invalid_request_on_non_object(self, server):
        envelope = self._raw_exchange(server, b"[1,2,3]")
        assert envelope["error"]["code"] == INVALID_REQUEST

    def test_connection_survives_errors(self, server):
        with server.connect() as client:
            client.call_raw("no_such_method")
            assert client.call("health")["status"] == "ok"


class TestWarmRestart:
    def test_second_server_answers_from_the_same_store(
        self, server, store_dir
    ):
        params = {"n": 4, "eps": "1/4"}
        expected = canonical_json(
            server.call("lower_bound", dict(params))
        )
        with ServerHandle(
            ServeConfig(store_dir=store_dir, batch_window=0.005)
        ) as fresh:
            with fresh.connect() as client:
                envelope = client.call_raw("lower_bound", dict(params))
            assert canonical_json(envelope["result"]) == expected
            assert envelope["served"]["cached"] is True


class TestStoreless:
    def test_server_without_store_still_serves_and_coalesces(self):
        with ServerHandle(ServeConfig(batch_window=0.005)) as handle:
            params = {"n": 3, "eps": "1/8"}
            expected = canonical_json(
                execute("lower_bound", dict(params))
            )
            with handle.connect() as client:
                first = client.call_raw("lower_bound", dict(params))
                second = client.call_raw("lower_bound", dict(params))
            assert canonical_json(first["result"]) == expected
            assert canonical_json(second["result"]) == expected
            # No store: the repeat is recomputed, never claims cached.
            assert second["served"]["cached"] is False
            stats = handle.call("stats")
            assert stats["store"] is None
            assert stats["serve"]["computed"] == 2


@pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"),
    reason="platform has no unix domain sockets",
)
class TestUnixSocket:
    def test_unix_endpoint_serves_and_cleans_up(self, tmp_path):
        unix_path = str(tmp_path / "serve.sock")
        config = ServeConfig(unix_path=unix_path, batch_window=0.005)
        with ServerHandle(config) as handle:
            from repro.serve.client import call_once

            result = call_once("health", unix_path=unix_path)
            assert result["status"] == "ok"
            assert handle.call("health")["status"] == "ok"
        import os

        assert not os.path.exists(unix_path)
