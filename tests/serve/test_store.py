"""Adversity tests for the content-addressed result store.

Corruption, misaddressed entries, schema drift, concurrent writers, and
LRU eviction under a byte budget — the store must always either return
the exact stored payload or report a miss; it must never return bytes it
cannot vouch for.
"""

import itertools
import json
import os
import threading

from repro.serve.protocol import request_digest
from repro.serve.store import STORE_SCHEMA, ResultStore


def _digest(tag: str) -> str:
    return request_digest("solvability", {"probe": tag})


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        digest = _digest("a")
        store.put(digest, "solvability", {"solvable": True, "n": 2})
        assert store.get(digest) == {"solvable": True, "n": 2}
        assert store.stats.hits == 1
        assert store.stats.writes == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.get(_digest("absent")) is None
        assert store.stats.misses == 1

    def test_overwrite_replaces(self, tmp_path):
        store = ResultStore(str(tmp_path))
        digest = _digest("a")
        store.put(digest, "solvability", {"v": 1})
        store.put(digest, "solvability", {"v": 2})
        assert store.get(digest) == {"v": 2}
        assert len(store) == 1

    def test_contains_and_len(self, tmp_path):
        store = ResultStore(str(tmp_path))
        digest = _digest("a")
        assert digest not in store
        store.put(digest, "solvability", {"v": 1})
        assert digest in store
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0


class TestCorruptionDetection:
    def test_truncated_entry_is_dropped_and_recomputable(self, tmp_path):
        store = ResultStore(str(tmp_path))
        digest = _digest("a")
        store.put(digest, "solvability", {"v": 1})
        path = os.path.join(store.root, digest + ".json")
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) // 2])
        assert store.get(digest) is None
        assert store.stats.corrupt == 1
        assert digest not in store  # deleted, not left to fail again

    def test_bit_rot_fails_checksum(self, tmp_path):
        store = ResultStore(str(tmp_path))
        digest = _digest("a")
        store.put(digest, "solvability", {"v": 1})
        path = os.path.join(store.root, digest + ".json")
        entry = json.loads(open(path).read())
        entry["result"]["v"] = 2  # flipped payload, stale checksum
        open(path, "w").write(json.dumps(entry))
        assert store.get(digest) is None
        assert store.stats.corrupt == 1

    def test_misaddressed_entry_is_dropped(self, tmp_path):
        # A file copied/renamed to the wrong digest must not serve.
        store = ResultStore(str(tmp_path))
        a, b = _digest("a"), _digest("b")
        store.put(a, "solvability", {"v": 1})
        os.replace(
            os.path.join(store.root, a + ".json"),
            os.path.join(store.root, b + ".json"),
        )
        assert store.get(b) is None
        assert store.stats.corrupt == 1

    def test_non_object_entry_is_corrupt(self, tmp_path):
        store = ResultStore(str(tmp_path))
        digest = _digest("a")
        path = os.path.join(store.root, digest + ".json")
        open(path, "w").write('["not", "an", "entry"]')
        assert store.get(digest) is None
        assert store.stats.corrupt == 1


class TestSchemaVersioning:
    def test_old_schema_reads_as_miss_and_recomputes(self, tmp_path):
        store = ResultStore(str(tmp_path))
        digest = _digest("a")
        store.put(digest, "solvability", {"v": 1})
        path = os.path.join(store.root, digest + ".json")
        entry = json.loads(open(path).read())
        entry["schema"] = STORE_SCHEMA - 1
        open(path, "w").write(json.dumps(entry))
        assert store.get(digest) is None
        assert store.stats.schema_mismatches == 1
        # The caller recomputes and overwrites; the store serves again.
        store.put(digest, "solvability", {"v": 1})
        assert store.get(digest) == {"v": 1}


class TestConcurrentWriters:
    def test_racing_writers_leave_one_whole_entry(self, tmp_path):
        store = ResultStore(str(tmp_path))
        digest = _digest("raced")
        barrier = threading.Barrier(8)

        def write(worker: int) -> None:
            barrier.wait()
            for _ in range(20):
                store.put(digest, "solvability", {"v": worker})

        threads = [
            threading.Thread(target=write, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Atomic temp+rename: whichever write landed last, the entry is
        # whole and verifiable — never torn.
        result = store.get(digest)
        assert result is not None and set(result) == {"v"}
        assert store.stats.corrupt == 0
        assert not [
            name
            for name in os.listdir(store.root)
            if ".tmp-" in name
        ]

    def test_two_stores_share_a_directory(self, tmp_path):
        a = ResultStore(str(tmp_path))
        b = ResultStore(str(tmp_path))
        digest = _digest("shared")
        a.put(digest, "solvability", {"v": 1})
        assert b.get(digest) == {"v": 1}


class TestEviction:
    def test_lru_order_with_injected_clock(self, tmp_path):
        ticks = itertools.count()
        store = ResultStore(
            str(tmp_path), clock=lambda: float(next(ticks))
        )
        digests = [_digest(tag) for tag in "abcd"]
        for digest in digests:
            store.put(digest, "solvability", {"payload": "x" * 64})
        entry_size = store.total_bytes() // len(digests)
        # Refresh "a" so "b" becomes the least recently used.
        assert store.get(digests[0]) is not None
        store.max_bytes = entry_size * 3
        store.put(
            _digest("e"), "solvability", {"payload": "y" * 64}
        )
        survivors = {d for d in digests + [_digest("e")] if d in store}
        assert digests[1] not in survivors  # oldest untouched: evicted
        assert digests[0] in survivors  # refreshed: kept
        assert _digest("e") in survivors  # just written: kept
        assert store.stats.evictions >= 1
        assert store.total_bytes() <= store.max_bytes

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for tag in "abcdefgh":
            store.put(_digest(tag), "solvability", {"t": tag})
        assert len(store) == 8
        assert store.stats.evictions == 0

    def test_budget_is_enforced_on_every_put(self, tmp_path):
        ticks = itertools.count()
        probe = ResultStore(str(tmp_path / "probe"))
        probe.put(_digest("size"), "solvability", {"t": "size"})
        entry_size = probe.total_bytes()
        store = ResultStore(
            str(tmp_path / "store"),
            max_bytes=entry_size * 2,
            clock=lambda: float(next(ticks)),
        )
        for tag in "abcdef":
            store.put(_digest(tag), "solvability", {"t": tag})
            assert store.total_bytes() <= store.max_bytes
        assert len(store) <= 2
