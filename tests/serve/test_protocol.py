"""Unit tests for the service wire protocol (framing and digests)."""

import json

import pytest

from repro.errors import ServeError
from repro.serve.protocol import (
    EXECUTION_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    canonical_json,
    error_line,
    parse_request,
    request_digest,
    response_line,
)


class TestCanonicalJson:
    def test_sorted_keys_compact_separators(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_key_order_is_immaterial(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json(
            {"b": 2, "a": 1}
        )

    def test_non_ascii_is_escaped(self):
        assert canonical_json("ε").encode("ascii")


class TestRequestDigest:
    def test_is_sha256_hex(self):
        digest = request_digest("health", {})
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_key_order_is_immaterial(self):
        assert request_digest(
            "solvability", {"n": 2, "task": "consensus"}
        ) == request_digest("solvability", {"task": "consensus", "n": 2})

    def test_method_and_params_both_count(self):
        base = request_digest("solvability", {"n": 2})
        assert request_digest("closure", {"n": 2}) != base
        assert request_digest("solvability", {"n": 3}) != base


class TestParseRequest:
    def test_well_formed(self):
        rid, method, params = parse_request(
            '{"jsonrpc": "2.0", "id": 7, "method": "health",'
            ' "params": {"x": 1}}'
        )
        assert (rid, method, params) == (7, "health", {"x": 1})

    def test_params_default_to_empty(self):
        assert parse_request('{"method": "health"}')[2] == {}

    def test_not_json(self):
        with pytest.raises(ServeError) as excinfo:
            parse_request("{nope")
        assert excinfo.value.code == PARSE_ERROR

    def test_not_an_object(self):
        with pytest.raises(ServeError) as excinfo:
            parse_request("[1, 2]")
        assert excinfo.value.code == INVALID_REQUEST

    def test_missing_method(self):
        with pytest.raises(ServeError) as excinfo:
            parse_request('{"id": 1}')
        assert excinfo.value.code == INVALID_REQUEST

    def test_params_must_be_object(self):
        with pytest.raises(ServeError) as excinfo:
            parse_request('{"method": "health", "params": [1]}')
        assert excinfo.value.code == INVALID_PARAMS


class TestResponseLines:
    def test_response_line_shape(self):
        envelope = json.loads(response_line(3, {"ok": True}))
        assert envelope == {
            "jsonrpc": "2.0",
            "id": 3,
            "result": {"ok": True},
        }

    def test_served_member_is_separate_from_result(self):
        served = {"digest": "d" * 64, "cached": True, "coalesced": False}
        with_meta = json.loads(response_line(1, {"ok": True}, served))
        without = json.loads(response_line(1, {"ok": True}))
        assert with_meta["served"] == served
        assert canonical_json(with_meta["result"]) == canonical_json(
            without["result"]
        )

    def test_error_line_shape(self):
        envelope = json.loads(error_line(None, METHOD_NOT_FOUND, "nope"))
        assert envelope["error"] == {
            "code": METHOD_NOT_FOUND,
            "message": "nope",
        }
        assert envelope["id"] is None

    def test_error_codes_are_distinct(self):
        codes = {
            PARSE_ERROR,
            INVALID_REQUEST,
            METHOD_NOT_FOUND,
            INVALID_PARAMS,
            EXECUTION_ERROR,
        }
        assert len(codes) == 5
