"""The perf smoke script must pass against its generous budget."""

import pathlib
import sys


def test_perf_smoke_passes():
    scripts = pathlib.Path(__file__).parents[1] / "scripts"
    sys.path.insert(0, str(scripts))
    try:
        import perf_smoke
    finally:
        sys.path.remove(str(scripts))

    assert perf_smoke.main() == 0


def test_perf_smoke_measurements_have_expected_shape():
    scripts = pathlib.Path(__file__).parents[1] / "scripts"
    sys.path.insert(0, str(scripts))
    try:
        import perf_smoke
    finally:
        sys.path.remove(str(scripts))

    data = perf_smoke.run_smoke()
    assert data["facets"] == 169
    assert data["f_vector"] == (99, 267, 169)
    assert data["one_round_requests"] >= data["one_round_materializations"]
