"""Unit tests for the test&set and binary consensus boxes."""

import pytest

from repro.errors import ModelError
from repro.models.schedules import schedule_from_blocks
from repro.objects import BinaryConsensusBox, TestAndSetBox
from repro.objects.beta import beta_input_function, majority_side
from repro.topology import Vertex


class TestTestAndSetBox:
    def test_one_winner_per_assignment(self):
        box = TestAndSetBox()
        schedule = schedule_from_blocks([[1, 2], [3]])
        for assignment in box.assignments(schedule, {}):
            assert sorted(assignment) == [1, 2, 3]
            assert sum(assignment.values()) == 1

    def test_winner_in_first_block(self):
        box = TestAndSetBox()
        schedule = schedule_from_blocks([[2], [1, 3]])
        winners = {
            next(p for p, bit in assignment.items() if bit == 1)
            for assignment in box.assignments(schedule, {})
        }
        assert winners == {2}

    def test_first_block_pair_gives_two_assignments(self):
        box = TestAndSetBox()
        schedule = schedule_from_blocks([[1, 3], [2]])
        assignments = list(box.assignments(schedule, {}))
        assert len(assignments) == 2
        winners = {
            next(p for p, bit in a.items() if bit == 1) for a in assignments
        }
        assert winners == {1, 3}

    def test_solo_output_is_one(self):
        assert TestAndSetBox().solo_output(7, None) == 1

    def test_requires_no_inputs(self):
        assert not TestAndSetBox().requires_inputs()


class TestBinaryConsensusBox:
    def test_agreement_in_every_assignment(self):
        box = BinaryConsensusBox()
        schedule = schedule_from_blocks([[1, 2], [3]])
        for assignment in box.assignments(schedule, {1: 0, 2: 1, 3: 1}):
            assert len(set(assignment.values())) == 1

    def test_validity_wrt_first_block(self):
        box = BinaryConsensusBox()
        schedule = schedule_from_blocks([[1], [2, 3]])
        decided = {
            next(iter(set(a.values())))
            for a in box.assignments(schedule, {1: 0, 2: 1, 3: 1})
        }
        assert decided == {0}  # only process 1's input counts

    def test_mixed_first_block_gives_both(self):
        box = BinaryConsensusBox()
        schedule = schedule_from_blocks([[1, 2], [3]])
        decided = {
            next(iter(set(a.values())))
            for a in box.assignments(schedule, {1: 0, 2: 1, 3: 0})
        }
        assert decided == {0, 1}

    def test_uniform_inputs_forced(self):
        box = BinaryConsensusBox()
        schedule = schedule_from_blocks([[1, 2, 3]])
        assignments = list(box.assignments(schedule, {1: 1, 2: 1, 3: 1}))
        assert len(assignments) == 1
        assert set(assignments[0].values()) == {1}

    def test_missing_input_rejected(self):
        box = BinaryConsensusBox()
        schedule = schedule_from_blocks([[1, 2]])
        with pytest.raises(ModelError):
            list(box.assignments(schedule, {1: 0}))

    def test_solo_output_echoes_input(self):
        assert BinaryConsensusBox().solo_output(4, 1) == 1
        assert BinaryConsensusBox().solo_output(4, 0) == 0

    def test_works_for_non_binary_values(self):
        box = BinaryConsensusBox()
        schedule = schedule_from_blocks([[1], [2]])
        decided = [
            set(a.values()) for a in box.assignments(schedule, {1: "x", 2: "y"})
        ]
        assert decided == [{"x"}]


class TestBetaHelpers:
    def test_beta_input_function_ignores_view(self):
        alpha = beta_input_function({1: 0, 2: 1})
        assert alpha(Vertex(1, "whatever")) == 0
        assert alpha(Vertex(2, ("complex", "state"))) == 1

    def test_majority_side_prefers_zeros_on_tie(self):
        beta = {1: 0, 2: 1}
        assert majority_side(beta, [1, 2]) == frozenset({1})

    def test_majority_side_picks_larger(self):
        beta = {1: 0, 2: 1, 3: 1, 4: 1, 5: 0}
        assert majority_side(beta, [1, 2, 3, 4, 5]) == frozenset({2, 3, 4})

    def test_majority_side_restricted_to_ids(self):
        beta = {1: 0, 2: 1, 3: 1, 4: 1, 5: 0}
        assert majority_side(beta, [1, 2, 5]) == frozenset({1, 5})

    def test_majority_side_at_least_half(self):
        beta = {i: i % 2 for i in range(1, 8)}
        side = majority_side(beta, range(1, 8))
        assert len(side) >= 7 / 2
