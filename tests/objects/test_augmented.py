"""Unit tests for augmented models (IIS + black box)."""

import pytest

from repro.errors import ModelError
from repro.objects import (
    AugmentedModel,
    BinaryConsensusBox,
    TestAndSetBox,
    beta_input_function,
)
from repro.topology import Simplex, SimplicialComplex, Vertex, View


class TestConstruction:
    def test_tas_needs_no_input_function(self):
        model = AugmentedModel(TestAndSetBox())
        assert "test&set" in model.name

    def test_bc_without_alpha_rejected(self):
        with pytest.raises(ModelError):
            AugmentedModel(BinaryConsensusBox())

    def test_custom_name(self):
        model = AugmentedModel(TestAndSetBox(), name="my-model")
        assert model.name == "my-model"


class TestTestAndSetComplex:
    def test_fig5_counts(self, iis_tas, triangle):
        complex_ = iis_tas.protocol_complex(
            SimplicialComplex.from_simplex(triangle), 1
        )
        # Fig. 5: 21 vertices, 7 per color.
        assert len(complex_.vertices) == 21
        for color in (1, 2, 3):
            assert len(complex_.vertices_of_color(color)) == 7

    def test_full_participation_facet_count(self, iis_tas, triangle):
        # 13 subdivision facets, weighted by first-block size:
        # 6·1 + 3·2 + 3·1 + 1·3 = 18.
        assert len(iis_tas.one_round_complex(triangle).facets) == 18

    def test_solo_views_always_win(self, iis_tas, triangle):
        complex_ = iis_tas.protocol_complex(
            SimplicialComplex.from_simplex(triangle), 1
        )
        for vertex in complex_.vertices:
            bit, view = vertex.value
            if len(view) == 1:
                assert bit == 1

    def test_exactly_one_winner_per_facet(self, iis_tas, triangle):
        for facet in iis_tas.one_round_complex(triangle).facets:
            bits = [v.value[0] for v in facet.vertices]
            assert sum(bits) == 1

    def test_solo_value(self, iis_tas):
        assert iis_tas.solo_value(Vertex(2, "b")) == (1, View({2: "b"}))

    def test_allows_solo(self, iis_tas):
        assert iis_tas.allows_solo_executions([1, 2, 3])


class TestBinaryConsensusComplex:
    def test_fig7_structure(self, iis_bc_beta011, triangle):
        complex_ = iis_bc_beta011.protocol_complex(
            SimplicialComplex.from_simplex(triangle), 1
        )
        # Process 1 calls with 0: its solo vertex with output 1 is absent.
        assert (
            Vertex(1, (1, View({1: "a"}))) not in complex_.vertices
        )
        assert Vertex(1, (0, View({1: "a"}))) in complex_.vertices

    def test_same_output_within_facet(self, iis_bc_beta011, triangle):
        for facet in iis_bc_beta011.one_round_complex(triangle).facets:
            bits = {v.value[0] for v in facet.vertices}
            assert len(bits) == 1

    def test_homogeneous_subset_forced(self, iis_bc_beta011):
        # Only processes 2 and 3 (both call with 1) participate: output 1.
        sub = Simplex([(2, "b"), (3, "c")])
        for vertex in iis_bc_beta011.one_round_complex(sub).vertices:
            assert vertex.value[0] == 1

    def test_solo_value_echoes_beta(self, iis_bc_beta011):
        assert iis_bc_beta011.solo_value(Vertex(1, "a"))[0] == 0
        assert iis_bc_beta011.solo_value(Vertex(2, "b"))[0] == 1

    def test_input_of(self, iis_bc_beta011):
        assert iis_bc_beta011.input_of(Vertex(3, "anything")) == 1


class TestScheduleFilter:
    def test_filtered_schedules(self, triangle):
        # Keep only schedules whose first block is a singleton.
        model = AugmentedModel(
            TestAndSetBox(),
            schedule_filter=lambda s: len(s.blocks()[0]) == 1,
        )
        schedules = list(model.schedules({1, 2, 3}))
        assert all(len(s.blocks()[0]) == 1 for s in schedules)
        assert len(schedules) == 6 + 3  # [a][b][c] ×6 and [a][bc] ×3

    def test_filter_affects_complex(self, triangle):
        model = AugmentedModel(
            TestAndSetBox(),
            schedule_filter=lambda s: len(s.blocks()[0]) == 1,
        )
        full = AugmentedModel(TestAndSetBox())
        assert len(model.one_round_complex(triangle).facets) < len(
            full.one_round_complex(triangle).facets
        )


class TestMultiRound:
    def test_two_round_augmented_values_nest(self, iis_tas, edge):
        two = iis_tas.protocol_complex(
            SimplicialComplex.from_simplex(edge), 2
        )
        vertex = next(iter(two.vertices))
        bit, view = vertex.value
        assert bit in (0, 1)
        inner_bit, inner_view = next(iter(view.values()))
        assert inner_bit in (0, 1)
        assert isinstance(inner_view, View)
