"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["models"],
            ["impossibility", "consensus", "--n", "2"],
            ["closure", "--eps", "1/4"],
            ["bounds", "--n", "4"],
            ["run", "halving", "--inputs", "0,1"],
        ):
            assert parser.parse_args(argv).command == argv[0]


class TestModelsCommand:
    def test_prints_fig8_census(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "13 facets" in out
        assert "25 facets" in out


class TestImpossibilityCommand:
    def test_consensus_iis(self, capsys):
        assert main(["impossibility", "consensus", "--n", "2"]) == 0
        out = capsys.readouterr().out
        assert "unsolvable" in out

    def test_relaxed_consensus_tas(self, capsys):
        assert (
            main(
                [
                    "impossibility",
                    "relaxed-consensus",
                    "--n",
                    "3",
                    "--model",
                    "tas",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fixed point" in out

    def test_unknown_model_exits(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["impossibility", "consensus", "--model", "nonsense"]
            )


class TestClosureCommand:
    def test_two_process_quarter(self, capsys):
        assert main(["closure", "--n", "2", "--eps", "1/4", "--m", "4"]) == 0
        out = capsys.readouterr().out
        assert "max spread: 3/4" in out  # Claim 2: 3ε

    def test_liberal_flag(self, capsys):
        assert (
            main(
                [
                    "closure",
                    "--n",
                    "3",
                    "--eps",
                    "1/4",
                    "--m",
                    "4",
                    "--liberal",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "liberal" in out
        assert "max spread: 1/2" in out  # Claim 3: 2ε


class TestBoundsCommand:
    def test_table_lists_models(self, capsys):
        assert main(["bounds", "--n", "8", "--eps", "1/8"]) == 0
        out = capsys.readouterr().out
        assert "wait-free IIS" in out
        assert "binary consensus" in out
        assert "2 rounds" in out  # min(3, ⌈log₂ 8⌉ − 1) = 2

    def test_two_processes_hide_bc_row(self, capsys):
        assert main(["bounds", "--n", "2", "--eps", "1/9"]) == 0
        out = capsys.readouterr().out
        assert "binary consensus" not in out


class TestRunCommand:
    def test_halving(self, capsys):
        assert (
            main(
                [
                    "run",
                    "halving",
                    "--eps",
                    "1/4",
                    "--inputs",
                    "0,1/2,1",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "decisions" in out
        assert "round 1" in out

    def test_tas_consensus(self, capsys):
        assert (
            main(["run", "tas-consensus", "--inputs", "0,1", "--seed", "1"])
            == 0
        )
        out = capsys.readouterr().out
        assert "box=" in out

    def test_bc_consensus_with_crashes(self, capsys):
        assert (
            main(
                [
                    "run",
                    "bc-consensus",
                    "--inputs",
                    "0,1/4,1/2,1",
                    "--seed",
                    "5",
                    "--crash",
                    "0.2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "decisions" in out


class TestRunAdversaryFlag:
    def test_matrix_adversary_runs_seeded(self, capsys):
        assert (
            main(
                [
                    "run",
                    "halving",
                    "--inputs",
                    "0,1/2,1",
                    "--seed",
                    "7",
                    "--adversary",
                    "snapshot",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "decisions" in out

    def test_matrix_adversary_is_deterministic(self, capsys):
        argv = [
            "run", "halving", "--inputs", "0,1/2,1",
            "--seed", "3", "--adversary", "collect",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_box_algorithms_reject_matrix_adversaries(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "tas-consensus",
                    "--inputs",
                    "0,1",
                    "--adversary",
                    "snapshot",
                ]
            )

    def test_crash_rejected_with_matrix_adversary(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "halving",
                    "--inputs",
                    "0,1",
                    "--adversary",
                    "collect",
                    "--crash",
                    "0.2",
                ]
            )


class TestChaosCommand:
    def test_clean_campaign_exits_zero(self, capsys):
        argv = [
            "chaos", "--algorithm", "aa", "--model", "iis",
            "-n", "3", "--executions", "30", "--seed", "0",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "DECIDED_OK" in out
        assert "chaos campaign" in out

    def test_json_report_is_deterministic(self, capsys):
        import json

        argv = [
            "chaos", "--algorithm", "aa", "--executions", "40",
            "--seed", "0", "--json",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["counts"]["DECIDED_OK"] == 40

    def test_broken_cell_reports_but_exits_zero(self, capsys):
        argv = [
            "chaos", "--algorithm", "consensus-broken",
            "-t", "0", "--executions", "100", "--seed", "0",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "VIOLATION" in out

    def test_illegal_injection_requires_allow_flag(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "chaos", "--algorithm", "aa",
                    "--inject-illegal", "lost-write",
                    "--executions", "5",
                ]
            )

    def test_replay_and_shrink_round_trip(self, capsys, tmp_path):
        import json

        from repro.faults import CampaignConfig, run_campaign

        report = run_campaign(
            CampaignConfig(
                cell="consensus-broken", executions=200, seed=0, t=0
            )
        )
        trace_file = tmp_path / "trace.json"
        trace_file.write_text(report.violations[0].trace.to_json())
        argv = [
            "chaos", "--replay", str(trace_file), "--shrink", "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["classification"] == "VIOLATION"
        assert payload["property"] == "agreement"

    def test_replay_missing_file_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--replay", "/nonexistent/trace.json"])


class TestResilienceFlags:
    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "chaos", "--algorithm", "aa",
                "--retries", "3", "--task-timeout", "5.5",
                "--no-degrade", "--inject-exec-faults", "9",
            ]
        )
        assert args.retries == 3
        assert args.task_timeout == 5.5
        assert args.no_degrade is True
        assert args.inject_exec_faults == 9

    def test_run_and_experiment_share_the_flags(self):
        args = build_parser().parse_args(
            ["run", "halving", "--retries", "1"]
        )
        assert args.retries == 1
        args = build_parser().parse_args(
            ["experiment", "E19", "--task-timeout", "2.0"]
        )
        assert args.task_timeout == 2.0

    def test_supervisor_built_only_when_flags_given(self):
        from repro.cli import _supervisor_from_args

        bare = build_parser().parse_args(
            ["chaos", "--algorithm", "aa"]
        )
        assert _supervisor_from_args(bare) is None
        flagged = build_parser().parse_args(
            [
                "chaos", "--algorithm", "aa",
                "--retries", "4", "--no-degrade",
                "--inject-exec-faults", "0",
            ]
        )
        config = _supervisor_from_args(flagged)
        assert config.retries == 4
        assert config.degrade is False
        assert config.fault_plan is not None
        assert config.fault_plan.seed == 0

    def test_invalid_retries_exit_nonzero(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "chaos", "--algorithm", "aa",
                    "--executions", "5", "--retries", "-1",
                ]
            )

    def test_fault_injected_campaign_byte_identical(self, capsys):
        # The acceptance check as a CLI round trip: seeded worker kills
        # under --workers 2 must not change a single byte of the JSON.
        import json

        baseline_argv = [
            "chaos", "--algorithm", "aa", "--executions", "40",
            "--seed", "0", "--json",
        ]
        chaotic_argv = baseline_argv + [
            "--workers", "2", "--retries", "2",
            "--inject-exec-faults", "0",
        ]
        assert main(baseline_argv) == 0
        baseline = capsys.readouterr().out
        assert main(chaotic_argv) == 0
        chaotic = capsys.readouterr().out
        assert chaotic == baseline
        assert json.loads(baseline)["counts"]["DECIDED_OK"] == 40

    def test_default_supervisor_reset_after_dispatch(self):
        from repro.parallel.supervisor import get_default_supervisor

        assert (
            main(
                [
                    "chaos", "--algorithm", "aa",
                    "--executions", "5", "--retries", "1",
                ]
            )
            == 0
        )
        assert get_default_supervisor() is None


class TestExperimentCommand:
    def test_list_shows_all_ids(self, capsys):
        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        for identifier in ("E1", "E9", "E21"):
            assert identifier in out

    def test_run_single_experiment(self, capsys):
        assert main(["experiment", "E14"]) == 0
        out = capsys.readouterr().out
        assert "Claim 1" in out
        assert "liberal_2" in out

    def test_case_insensitive(self, capsys):
        assert main(["experiment", "e1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out

    def test_unknown_experiment_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["experiment", "E99"])

    def test_failing_experiment_exits_nonzero_with_cause(
        self, capsys, monkeypatch
    ):
        from repro.experiments import EXPERIMENTS

        entry = EXPERIMENTS["E1"]

        def boom():
            raise KeyError("missing artifact")

        monkeypatch.setitem(
            EXPERIMENTS,
            "E1",
            entry.__class__(
                entry.identifier, entry.artifact, entry.summary, boom
            ),
        )
        assert main(["experiment", "E1"]) == 1
        err = capsys.readouterr().err
        assert "experiment E1 failed" in err
        assert "KeyError" in err


class TestServeClientCommands:
    def test_serve_and_client_parse(self):
        parser = build_parser()
        serve = parser.parse_args(
            [
                "serve",
                "--port",
                "0",
                "--store",
                "/tmp/store",
                "--batch-window",
                "0.01",
                "--batch-max",
                "4",
            ]
        )
        assert serve.command == "serve"
        assert serve.store == "/tmp/store"
        client = parser.parse_args(
            ["client", "health", "--port", "7341", "--envelope"]
        )
        assert client.command == "client"
        assert client.method == "health"
        assert client.envelope

    def test_serve_rejects_bad_config(self):
        with pytest.raises(SystemExit):
            main(["serve", "--port", "70000"])

    def test_client_rejects_bad_params(self):
        with pytest.raises(SystemExit, match="not JSON"):
            main(["client", "health", "--params", "{nope"])
        with pytest.raises(SystemExit, match="JSON object"):
            main(["client", "health", "--params", "[1]"])

    def test_client_round_trip_against_live_server(self, capsys):
        import json

        from repro.serve import ServeConfig
        from repro.serve.testing import ServerHandle

        with ServerHandle(ServeConfig(batch_window=0.005)) as handle:
            assert (
                main(
                    ["client", "health", "--port", str(handle.port)]
                )
                == 0
            )
            payload = json.loads(capsys.readouterr().out)
            assert payload["status"] == "ok"

            assert (
                main(
                    [
                        "client",
                        "lower_bound",
                        "--params",
                        '{"n": 3, "eps": "1/8"}',
                        "--port",
                        str(handle.port),
                        "--envelope",
                    ]
                )
                == 0
            )
            envelope = json.loads(capsys.readouterr().out)
            assert "served" in envelope and "result" in envelope

    def test_client_surfaces_server_errors(self, capsys):
        from repro.serve import ServeConfig
        from repro.serve.testing import ServerHandle

        with ServerHandle(ServeConfig(batch_window=0.005)) as handle:
            with pytest.raises(SystemExit, match="request failed"):
                main(
                    [
                        "client",
                        "no_such_method",
                        "--port",
                        str(handle.port),
                    ]
                )


class TestTraceDirectorySummarize:
    def test_summarize_merges_request_artifacts(self, tmp_path, capsys):
        from repro.serve import ServeConfig
        from repro.serve.testing import ServerHandle

        trace_dir = tmp_path / "traces"
        config = ServeConfig(
            trace_dir=str(trace_dir), batch_window=0.005
        )
        with ServerHandle(config) as handle:
            handle.call("health")
            handle.call("lower_bound", {"n": 3, "eps": "1/8"})
        assert main(["trace", "summarize", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "serve/request" in out

    def test_empty_directory_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no trace artifacts"):
            main(["trace", "summarize", str(tmp_path)])
