"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["models"],
            ["impossibility", "consensus", "--n", "2"],
            ["closure", "--eps", "1/4"],
            ["bounds", "--n", "4"],
            ["run", "halving", "--inputs", "0,1"],
        ):
            assert parser.parse_args(argv).command == argv[0]


class TestModelsCommand:
    def test_prints_fig8_census(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "13 facets" in out
        assert "25 facets" in out


class TestImpossibilityCommand:
    def test_consensus_iis(self, capsys):
        assert main(["impossibility", "consensus", "--n", "2"]) == 0
        out = capsys.readouterr().out
        assert "unsolvable" in out

    def test_relaxed_consensus_tas(self, capsys):
        assert (
            main(
                [
                    "impossibility",
                    "relaxed-consensus",
                    "--n",
                    "3",
                    "--model",
                    "tas",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fixed point" in out

    def test_unknown_model_exits(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["impossibility", "consensus", "--model", "nonsense"]
            )


class TestClosureCommand:
    def test_two_process_quarter(self, capsys):
        assert main(["closure", "--n", "2", "--eps", "1/4", "--m", "4"]) == 0
        out = capsys.readouterr().out
        assert "max spread: 3/4" in out  # Claim 2: 3ε

    def test_liberal_flag(self, capsys):
        assert (
            main(
                [
                    "closure",
                    "--n",
                    "3",
                    "--eps",
                    "1/4",
                    "--m",
                    "4",
                    "--liberal",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "liberal" in out
        assert "max spread: 1/2" in out  # Claim 3: 2ε


class TestBoundsCommand:
    def test_table_lists_models(self, capsys):
        assert main(["bounds", "--n", "8", "--eps", "1/8"]) == 0
        out = capsys.readouterr().out
        assert "wait-free IIS" in out
        assert "binary consensus" in out
        assert "2 rounds" in out  # min(3, ⌈log₂ 8⌉ − 1) = 2

    def test_two_processes_hide_bc_row(self, capsys):
        assert main(["bounds", "--n", "2", "--eps", "1/9"]) == 0
        out = capsys.readouterr().out
        assert "binary consensus" not in out


class TestRunCommand:
    def test_halving(self, capsys):
        assert (
            main(
                [
                    "run",
                    "halving",
                    "--eps",
                    "1/4",
                    "--inputs",
                    "0,1/2,1",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "decisions" in out
        assert "round 1" in out

    def test_tas_consensus(self, capsys):
        assert (
            main(["run", "tas-consensus", "--inputs", "0,1", "--seed", "1"])
            == 0
        )
        out = capsys.readouterr().out
        assert "box=" in out

    def test_bc_consensus_with_crashes(self, capsys):
        assert (
            main(
                [
                    "run",
                    "bc-consensus",
                    "--inputs",
                    "0,1/4,1/2,1",
                    "--seed",
                    "5",
                    "--crash",
                    "0.2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "decisions" in out


class TestExperimentCommand:
    def test_list_shows_all_ids(self, capsys):
        assert main(["experiment"]) == 0
        out = capsys.readouterr().out
        for identifier in ("E1", "E9", "E21"):
            assert identifier in out

    def test_run_single_experiment(self, capsys):
        assert main(["experiment", "E14"]) == 0
        out = capsys.readouterr().out
        assert "Claim 1" in out
        assert "liberal_2" in out

    def test_case_insensitive(self, capsys):
        assert main(["experiment", "e1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out

    def test_unknown_experiment_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["experiment", "E99"])
