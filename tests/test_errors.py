"""The exception hierarchy: one base, catchable subfamilies."""

import pytest

from repro.errors import (
    ChromaticityError,
    ModelError,
    ReproError,
    RuntimeModelError,
    ScheduleError,
    SimplicialityError,
    SolvabilityError,
    TaskSpecificationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            ChromaticityError,
            SimplicialityError,
            ScheduleError,
            TaskSpecificationError,
            SolvabilityError,
            ModelError,
            RuntimeModelError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    @pytest.mark.parametrize(
        "exception_type",
        [
            ChromaticityError,
            SimplicialityError,
            ScheduleError,
            TaskSpecificationError,
            ModelError,
        ],
    )
    def test_input_errors_are_value_errors(self, exception_type):
        # Misuse of the API should be catchable as plain ValueError too.
        assert issubclass(exception_type, ValueError)

    @pytest.mark.parametrize(
        "exception_type", [SolvabilityError, RuntimeModelError]
    )
    def test_state_errors_are_runtime_errors(self, exception_type):
        assert issubclass(exception_type, RuntimeError)


class TestCatchability:
    def test_library_failures_catchable_with_one_clause(self):
        from repro.topology import Simplex

        with pytest.raises(ReproError):
            Simplex([])  # chromaticity failure

        from repro.models.schedules import schedule_from_blocks

        with pytest.raises(ReproError):
            schedule_from_blocks([])  # schedule failure
