"""Shared fixtures: models, canonical simplices, and tasks."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.models import (
    CollectModel,
    ImmediateSnapshotModel,
    SnapshotModel,
)
from repro.objects import AugmentedModel, BinaryConsensusBox, TestAndSetBox
from repro.objects.beta import beta_input_function
from repro.topology import Simplex, SimplicialComplex


@pytest.fixture(scope="session")
def iis():
    return ImmediateSnapshotModel()


@pytest.fixture(scope="session")
def snapshot_model():
    return SnapshotModel()


@pytest.fixture(scope="session")
def collect_model():
    return CollectModel()


@pytest.fixture(scope="session")
def iis_tas():
    return AugmentedModel(TestAndSetBox())


@pytest.fixture(scope="session")
def iis_bc_beta011():
    beta = {1: 0, 2: 1, 3: 1}
    return AugmentedModel(BinaryConsensusBox(), beta_input_function(beta))


@pytest.fixture
def triangle():
    """A 2-dimensional input simplex on processes 1, 2, 3."""
    return Simplex([(1, "a"), (2, "b"), (3, "c")])


@pytest.fixture
def edge():
    """A 1-dimensional input simplex on processes 1, 2."""
    return Simplex([(1, "a"), (2, "b")])


@pytest.fixture
def triangle_complex(triangle):
    return SimplicialComplex.from_simplex(triangle)


@pytest.fixture
def quarter():
    return Fraction(1, 4)
