"""The model-level memoization layer (one-round complexes, view maps)."""

from repro.instrumentation import counter, counters_delta, counters_snapshot
from repro.models import (
    CollectModel,
    ImmediateSnapshotModel,
    ProtocolOperator,
    SnapshotModel,
)
from repro.topology import Simplex


def triangle():
    return Simplex([(1, "a"), (2, "b"), (3, "c")])


class TestOneRoundMemo:
    def test_repeat_requests_return_the_same_object(self):
        iis = ImmediateSnapshotModel()
        sigma = triangle()
        assert iis.one_round_complex(sigma) is iis.one_round_complex(sigma)

    def test_memo_is_per_model_instance(self):
        sigma = triangle()
        first = ImmediateSnapshotModel().one_round_complex(sigma)
        second = ImmediateSnapshotModel().one_round_complex(sigma)
        assert first is not second
        assert first == second

    def test_operators_share_the_model_cache(self):
        # Independent operators over one model must not re-materialize
        # one-round complexes the model has already built.
        iis = ImmediateSnapshotModel()
        sigma = triangle()
        ProtocolOperator(iis).of_simplex(sigma, 1)
        name = f"one-round-complex[{iis.name}]"
        before = counters_snapshot()
        ProtocolOperator(iis).of_simplex(sigma, 1)
        delta = counters_delta(before, counters_snapshot())
        hits, misses = delta.get(name, (0, 0))
        assert misses == 0
        assert hits > 0

    def test_memo_preserves_facet_counts(self):
        sigma = triangle()
        for model, expected in (
            (ImmediateSnapshotModel(), 13),
            (SnapshotModel(), 19),
            (CollectModel(), 25),
        ):
            for _ in range(2):
                assert len(model.one_round_complex(sigma).facets) == expected


class TestViewMapMemo:
    def test_repeat_requests_return_the_same_object(self):
        iis = ImmediateSnapshotModel()
        first = iis.view_maps([1, 2, 3])
        second = iis.view_maps([1, 2, 3])
        assert first is second

    def test_id_order_is_irrelevant(self):
        iis = ImmediateSnapshotModel()
        assert iis.view_maps([1, 2]) is iis.view_maps([2, 1])


class TestCounterPlumbing:
    def test_counter_is_a_process_wide_singleton(self):
        a = counter("test-caching.sample")
        b = counter("test-caching.sample")
        assert a is b

    def test_counters_delta_omits_unchanged(self):
        sample = counter("test-caching.delta")
        before = counters_snapshot()
        delta = counters_delta(before, counters_snapshot())
        assert "test-caching.delta" not in delta
        sample.hit()
        delta = counters_delta(before, counters_snapshot())
        assert delta["test-caching.delta"] == (1, 0)
