"""Unit tests for the three register models and their one-round complexes."""


from repro.models import (
    CollectModel,
    ImmediateSnapshotModel,
    SnapshotModel,
    standard_chromatic_subdivision,
)
from repro.topology import Simplex, SimplicialComplex, Vertex, View


class TestImmediateSnapshot:
    def test_one_round_edge(self, iis, edge):
        complex_ = iis.one_round_complex(edge)
        # Three executions: 1 first, 2 first, together.
        assert len(complex_.facets) == 3
        both = View({1: "a", 2: "b"})
        assert Vertex(1, both) in complex_.vertices
        assert Vertex(1, View({1: "a"})) in complex_.vertices

    def test_one_round_triangle_is_chromatic_subdivision(self, iis, triangle):
        subdivision = standard_chromatic_subdivision(triangle)
        assert len(subdivision.facets) == 13
        assert subdivision.f_vector() == (12, 24, 13)
        assert subdivision.is_pure()

    def test_subdivision_vertex_views_satisfy_is_conditions(
        self, iis, triangle
    ):
        complex_ = iis.one_round_complex(triangle)
        for facet in complex_.facets:
            views = {v.color: v.value for v in facet.vertices}
            for i, view_i in views.items():
                for j, view_j in views.items():
                    # j ∈ V_i or i ∈ V_j ...
                    assert j in view_i or i in view_j
                    # ... and j ∈ V_i ⟹ V_j ⊆ V_i.
                    if j in view_i:
                        assert view_j.is_subview_of(view_i)

    def test_solo_vertex_exists_for_every_process(self, iis, triangle):
        complex_ = iis.one_round_complex(triangle)
        for vertex in triangle.vertices:
            solo = iis.solo_vertex(vertex)
            assert solo in complex_.vertices

    def test_solo_value_shape(self, iis):
        solo = iis.solo_value(Vertex(2, "b"))
        assert solo == View({2: "b"})

    def test_allows_solo_executions(self, iis):
        assert iis.allows_solo_executions([1, 2])
        assert iis.allows_solo_executions([1, 2, 3])

    def test_view_maps_cached(self, iis):
        first = iis.view_maps(frozenset({1, 2}))
        second = iis.view_maps(frozenset({1, 2}))
        assert first is second

    def test_single_process(self, iis):
        complex_ = iis.one_round_complex(Simplex([(5, "v")]))
        assert len(complex_.facets) == 1
        assert complex_.dim == 0


class TestModelHierarchy:
    def test_facet_counts_fig8(self, iis, snapshot_model, collect_model, triangle):
        base = SimplicialComplex.from_simplex(triangle)
        assert len(iis.protocol_complex(base, 1).facets) == 13
        assert len(snapshot_model.protocol_complex(base, 1).facets) == 19
        assert len(collect_model.protocol_complex(base, 1).facets) == 25

    def test_strict_inclusions(self, iis, snapshot_model, collect_model, triangle):
        base = SimplicialComplex.from_simplex(triangle)
        small = iis.protocol_complex(base, 1)
        middle = snapshot_model.protocol_complex(base, 1)
        large = collect_model.protocol_complex(base, 1)
        assert small.simplices < middle.simplices
        assert middle.simplices < large.simplices

    def test_same_vertex_set_across_models(
        self, iis, snapshot_model, collect_model, triangle
    ):
        # All three models produce views = subsets containing self; only
        # the simplices differ.
        base = SimplicialComplex.from_simplex(triangle)
        assert (
            iis.protocol_complex(base, 1).vertices
            == snapshot_model.protocol_complex(base, 1).vertices
            == collect_model.protocol_complex(base, 1).vertices
        )

    def test_models_coincide_for_two_processes(
        self, iis, snapshot_model, collect_model, edge
    ):
        assert (
            iis.one_round_complex(edge).simplices
            == snapshot_model.one_round_complex(edge).simplices
            == collect_model.one_round_complex(edge).simplices
        )

    def test_all_models_allow_solo(self, snapshot_model, collect_model):
        assert snapshot_model.allows_solo_executions([1, 2, 3])
        assert collect_model.allows_solo_executions([1, 2, 3])


class TestIteration:
    def test_two_round_iis_facets(self, iis, triangle):
        base = SimplicialComplex.from_simplex(triangle)
        assert len(iis.protocol_complex(base, 2).facets) == 13 * 13

    def test_two_round_edge(self, iis, edge):
        base = SimplicialComplex.from_simplex(edge)
        assert len(iis.protocol_complex(base, 2).facets) == 9

    def test_zero_rounds_is_identity(self, iis, triangle):
        base = SimplicialComplex.from_simplex(triangle)
        assert iis.protocol_complex(base, 0) == base

    def test_round_values_nest(self, iis, edge):
        base = SimplicialComplex.from_simplex(edge)
        two = iis.protocol_complex(base, 2)
        vertex = next(iter(two.vertices))
        assert isinstance(vertex.value, View)
        inner = next(iter(vertex.value.values()))
        assert isinstance(inner, View)
