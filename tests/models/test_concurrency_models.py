"""Unit tests for the k-concurrency and no-synchrony affine models."""

import pytest

from repro.core import impossibility_from_fixed_point, is_solvable  # noqa: F401
from repro.errors import ModelError
from repro.models import (
    ImmediateSnapshotModel,
    k_concurrency_model,
    no_synchrony_model,
)
from repro.tasks import binary_consensus_task


class TestKConcurrency:
    def test_invalid_k(self, iis):
        with pytest.raises(ModelError):
            k_concurrency_model(iis, 0)

    def test_k1_is_sequential(self, iis, triangle):
        model = k_concurrency_model(iis, 1)
        complex_ = model.one_round_complex(triangle)
        # Only the 3! fully sequential executions survive.
        assert len(complex_.facets) == 6

    def test_k2_drops_only_synchronous(self, iis, triangle):
        model = k_concurrency_model(iis, 2)
        assert len(model.one_round_complex(triangle).facets) == 12

    def test_k_ge_n_equals_base(self, iis, triangle):
        model = k_concurrency_model(iis, 3)
        assert (
            model.one_round_complex(triangle).simplices
            == iis.one_round_complex(triangle).simplices
        )

    def test_solo_preserved_for_every_k(self, iis):
        for k in (1, 2, 3):
            assert k_concurrency_model(iis, k).allows_solo_executions(
                [1, 2, 3]
            )

    def test_block_sizes_bounded(self, iis, triangle):
        model = k_concurrency_model(iis, 2)
        for view_map in model.view_maps(frozenset({1, 2, 3})):
            by_view = {}
            for view in view_map.values():
                by_view[view] = by_view.get(view, 0) + 1
            assert max(by_view.values()) <= 2

    def test_two_process_consensus_solvable_sequentially(self, iis):
        # Removing concurrency changes computability: in the 1-concurrency
        # model the "both see both" execution disappears, the path argument
        # of Corollary 1 breaks, and 2-process consensus becomes 1-round
        # solvable (the second process adopts the first's value).
        model = k_concurrency_model(iis, 1)
        assert is_solvable(binary_consensus_task([1, 2]), model, 1)

    def test_three_process_consensus_still_impossible_sequentially(self, iis):
        # …but with three processes even the sequential model cannot solve
        # consensus: exactly as in Corollary 2, plain consensus is not a
        # fixed point (its 2-process faces are solvable), while the relaxed
        # task is — Lemma 1 then gives impossibility.  A new result
        # obtained with the paper's own technique.
        from repro.tasks import relaxed_consensus_task

        model = k_concurrency_model(iis, 1)
        assert not is_solvable(binary_consensus_task([1, 2, 3]), model, 1)
        report = impossibility_from_fixed_point(
            relaxed_consensus_task([1, 2, 3]), model
        )
        assert report.fixed_point
        assert report.unsolvable

    def test_two_concurrency_consensus_fixed_point_n3(self, iis):
        # k = 2 keeps enough concurrency for the full Corollary 1 argument:
        # plain consensus is again a fixed point for three processes.
        model = k_concurrency_model(iis, 2)
        report = impossibility_from_fixed_point(
            binary_consensus_task([1, 2, 3]), model
        )
        assert report.fixed_point
        assert report.unsolvable

    def test_model_name_mentions_k(self, iis):
        assert "2-concurrency" in k_concurrency_model(iis, 2).name


class TestNoSynchrony:
    def test_drops_exactly_one_facet(self, iis, triangle):
        model = no_synchrony_model(iis)
        assert len(model.one_round_complex(triangle).facets) == 12

    def test_solo_preserved(self, iis):
        assert no_synchrony_model(iis).allows_solo_executions([1, 2, 3])

    def test_two_process_consensus_becomes_solvable(self, iis):
        # For n = 2 the synchronous execution IS the middle edge of the
        # path in Corollary 1's proof; removing it disconnects the
        # one-round complex and consensus becomes solvable.
        model = no_synchrony_model(iis)
        assert is_solvable(binary_consensus_task([1, 2]), model, 1)

    def test_three_process_consensus_still_unsolvable_one_round(self, iis):
        # With three processes, removing just the synchronous facet leaves
        # the complex connected enough for impossibility at one round.
        model = no_synchrony_model(iis)
        assert not is_solvable(binary_consensus_task([1, 2, 3]), model, 1)

    def test_predicate_exposed(self, iis):
        model = no_synchrony_model(iis)
        everyone = frozenset({1, 2})
        sync = {1: everyone, 2: everyone}
        assert not model.one_round_schedule_allowed(sync)
        assert model.one_round_schedule_allowed(
            {1: frozenset({1}), 2: everyone}
        )
