"""Property-based tests tying schedules, models, and views together."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    CollectModel,
    ImmediateSnapshotModel,
    SnapshotModel,
)
from repro.models.schedules import (
    collect_schedules,
    immediate_snapshot_schedules,
    ordered_partitions,
    schedule_from_blocks,
    snapshot_schedules,
    view_maps_of_schedules,
)
from repro.topology import Simplex

id_sets = st.sets(
    st.integers(min_value=1, max_value=6), min_size=1, max_size=4
)


@st.composite
def blocks_of(draw, ids):
    pool = sorted(ids)
    draw(st.randoms(use_true_random=False)).shuffle(pool)
    blocks = []
    while pool:
        size = draw(st.integers(min_value=1, max_value=len(pool)))
        blocks.append(pool[:size])
        pool = pool[size:]
    return blocks


@given(id_sets, st.data())
def test_blocks_roundtrip_through_matrix(ids, data):
    blocks = data.draw(blocks_of(ids))
    schedule = schedule_from_blocks(blocks)
    assert schedule.participants == frozenset(ids)
    assert schedule.is_immediate_snapshot()
    assert [set(b) for b in schedule.blocks()] == [set(b) for b in blocks]


@given(id_sets)
@settings(max_examples=25, deadline=None)
def test_is_schedules_satisfy_prefix_views(ids):
    for schedule in immediate_snapshot_schedules(ids):
        blocks = schedule.blocks()
        prefix = set()
        for block in blocks:
            prefix |= set(block)
            for process in block:
                assert schedule.view_of(process) == frozenset(prefix)


@given(st.sets(st.integers(min_value=1, max_value=4), min_size=1, max_size=3))
@settings(max_examples=20, deadline=None)
def test_model_view_map_hierarchy(ids):
    iis_maps = {
        tuple(sorted((k, tuple(sorted(v))) for k, v in m.items()))
        for m in view_maps_of_schedules(immediate_snapshot_schedules(ids))
    }
    snap_maps = {
        tuple(sorted((k, tuple(sorted(v))) for k, v in m.items()))
        for m in view_maps_of_schedules(snapshot_schedules(ids))
    }
    collect_maps = {
        tuple(sorted((k, tuple(sorted(v))) for k, v in m.items()))
        for m in view_maps_of_schedules(collect_schedules(ids))
    }
    assert iis_maps <= snap_maps <= collect_maps


@given(st.sets(st.integers(min_value=1, max_value=4), min_size=1, max_size=3))
@settings(max_examples=15, deadline=None)
def test_every_view_contains_self_and_someone_sees_all(ids):
    for model in (CollectModel(), SnapshotModel(), ImmediateSnapshotModel()):
        for view_map in model.view_maps(frozenset(ids)):
            assert set(view_map) == set(ids)
            for process, view in view_map.items():
                assert process in view
            assert any(view == frozenset(ids) for view in view_map.values())


@given(st.sets(st.integers(min_value=1, max_value=4), min_size=1, max_size=3))
@settings(max_examples=15, deadline=None)
def test_one_round_complex_is_pure_for_iis(ids):
    model = ImmediateSnapshotModel()
    sigma = Simplex((i, i * 10) for i in sorted(ids))
    complex_ = model.one_round_complex(sigma)
    assert complex_.is_pure()
    assert complex_.dim == sigma.dim


@given(st.sets(st.integers(min_value=1, max_value=3), min_size=1, max_size=3))
@settings(max_examples=10, deadline=None)
def test_ordered_partition_blocks_partition_ids(ids):
    for blocks in ordered_partitions(ids):
        flattened = [p for block in blocks for p in block]
        assert sorted(flattened) == sorted(ids)
