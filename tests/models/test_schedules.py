"""Unit tests for one-round schedules (the Appendix A.3.4 matrices)."""

import pytest

from repro.errors import ScheduleError
from repro.models.schedules import (
    OneRoundSchedule,
    collect_schedules,
    immediate_snapshot_schedules,
    ordered_partitions,
    schedule_from_blocks,
    snapshot_schedules,
    view_maps_of_schedules,
)

FUBINI = {1: 1, 2: 3, 3: 13, 4: 75, 5: 541}


def fs(*items):
    return frozenset(items)


class TestScheduleValidation:
    def test_valid_matrix(self):
        schedule = OneRoundSchedule(
            groups=(fs(1), fs(2)), views=(fs(1, 2), fs(2))
        )
        assert schedule.participants == fs(1, 2)

    def test_condition_2_views_within_participants(self):
        # P_1 = {2, 9} mentions process 9 which is in no group.
        with pytest.raises(ScheduleError):
            OneRoundSchedule(
                groups=(fs(1), fs(2)), views=(fs(1, 2), fs(2, 9))
            )

    def test_condition_3_p0_equals_participants(self):
        with pytest.raises(ScheduleError):
            OneRoundSchedule(groups=(fs(1), fs(2)), views=(fs(1), fs(2)))

    def test_condition_4_groups_partition(self):
        with pytest.raises(ScheduleError):
            OneRoundSchedule(
                groups=(fs(1, 2), fs(2)), views=(fs(1, 2), fs(2))
            )

    def test_condition_5_suffix_containment(self):
        # P_1 = {2} must contain I_1 ∪ I_2 = {2, 3}.
        with pytest.raises(ScheduleError):
            OneRoundSchedule(
                groups=(fs(1), fs(2), fs(3)),
                views=(fs(1, 2, 3), fs(2), fs(3)),
            )

    def test_empty_group_rejected(self):
        with pytest.raises(ScheduleError):
            OneRoundSchedule(groups=(fs(),), views=(fs(),))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ScheduleError):
            OneRoundSchedule(groups=(fs(1),), views=(fs(1), fs(1)))


class TestScheduleSemantics:
    def test_view_map(self):
        schedule = schedule_from_blocks([[1], [2, 3]])
        views = schedule.view_map()
        assert views[1] == fs(1)
        assert views[2] == views[3] == fs(1, 2, 3)

    def test_view_of_unknown_process(self):
        schedule = schedule_from_blocks([[1]])
        with pytest.raises(ScheduleError):
            schedule.view_of(9)

    def test_solo_processes(self):
        schedule = schedule_from_blocks([[2], [1, 3]])
        assert schedule.solo_processes() == fs(2)

    def test_blocks_roundtrip(self):
        blocks = (fs(2), fs(1, 3))
        schedule = schedule_from_blocks(blocks)
        assert schedule.blocks() == blocks

    def test_blocks_roundtrip_all_three_process_schedules(self):
        # blocks() ∘ schedule_from_blocks is the identity on every
        # 3-process immediate-snapshot schedule (matrix ↔ ordered blocks).
        for schedule in immediate_snapshot_schedules([1, 2, 3]):
            rebuilt = schedule_from_blocks(schedule.blocks())
            assert rebuilt.blocks() == schedule.blocks()
            assert rebuilt.view_map() == schedule.view_map()

    def test_blocks_rejected_for_non_is(self):
        # Cyclic-free collect-only matrix: 1 sees all, 2 sees {2,3}, 3 sees
        # {1,2,3}? Build a snapshot-violating one: groups ({1},{3},{2}),
        # views ({123},{23},{12}): IS condition fails (2 ∈ P_1 but P_2 ⊄ P_1).
        schedule = OneRoundSchedule(
            groups=(fs(1), fs(3), fs(2)),
            views=(fs(1, 2, 3), fs(2, 3), fs(1, 2)),
        )
        assert not schedule.is_immediate_snapshot()
        with pytest.raises(ScheduleError):
            schedule.blocks()

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_from_blocks([[1, 2], [2]])

    def test_empty_blocks_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_from_blocks([])
        with pytest.raises(ScheduleError):
            schedule_from_blocks([[]])


class TestClassPredicates:
    def test_synchronous_schedule_is_everything(self):
        schedule = schedule_from_blocks([[1, 2, 3]])
        assert schedule.is_snapshot()
        assert schedule.is_immediate_snapshot()

    def test_snapshot_chain_condition(self):
        chain = OneRoundSchedule(
            groups=(fs(1), fs(2)), views=(fs(1, 2), fs(2))
        )
        assert chain.is_snapshot()
        crossed = OneRoundSchedule(
            groups=(fs(1), fs(3), fs(2)),
            views=(fs(1, 2, 3), fs(2, 3), fs(1, 2)),
        )
        assert not crossed.is_snapshot()

    def test_snapshot_but_not_immediate(self):
        # Views chain but containment-transitivity fails: both 2 and 3 see
        # {2,3}... use the classic: 1 sees all; 2 sees {1,2,3}; 3 sees {3}?
        # Simpler: groups ({1,2},{3}) with views ({123},{123}? ...) — build
        # from matrices: I_0={1}, I_1={2}, I_2={3}; P=( {123}, {123}, {3} ).
        schedule = OneRoundSchedule(
            groups=(fs(1), fs(2), fs(3)),
            views=(fs(1, 2, 3), fs(1, 2, 3), fs(3)),
        )
        assert schedule.is_snapshot()
        assert schedule.is_immediate_snapshot()  # this one IS immediate
        # A genuinely snapshot-only example (Fig. 8(c)'s shape): process 1
        # sees {1,2} although process 2 sees everything — views chain, but
        # 2 ∈ V_1 with V_2 ⊄ V_1 violates immediacy.
        snap_only = OneRoundSchedule(
            groups=(fs(2, 3), fs(1)),
            views=(fs(1, 2, 3), fs(1, 2)),
        )
        assert snap_only.is_snapshot()
        assert not snap_only.is_immediate_snapshot()


class TestEnumerations:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_ordered_partition_counts_are_fubini(self, n):
        found = list(ordered_partitions(range(1, n + 1)))
        assert len(found) == FUBINI[n]
        assert len(set(found)) == FUBINI[n]

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_immediate_snapshot_schedules_valid(self, n):
        ids = range(1, n + 1)
        for schedule in immediate_snapshot_schedules(ids):
            assert schedule.is_immediate_snapshot()
            assert schedule.is_snapshot()

    def test_snapshot_schedules_subset_of_collect(self):
        collect = {s.view_map()[1] for s in collect_schedules([1, 2])}
        snap = {s.view_map()[1] for s in snapshot_schedules([1, 2])}
        assert snap <= collect

    @pytest.mark.parametrize(
        "n, expected_facets", [(1, 1), (2, 3), (3, 13), (4, 75)]
    )
    def test_distinct_is_view_maps(self, n, expected_facets):
        maps = view_maps_of_schedules(
            immediate_snapshot_schedules(range(1, n + 1))
        )
        assert len(maps) == expected_facets

    @pytest.mark.parametrize("n, expected", [(2, 3), (3, 19)])
    def test_distinct_snapshot_view_maps(self, n, expected):
        maps = view_maps_of_schedules(snapshot_schedules(range(1, n + 1)))
        assert len(maps) == expected

    @pytest.mark.parametrize("n, expected", [(2, 3), (3, 25)])
    def test_distinct_collect_view_maps(self, n, expected):
        maps = view_maps_of_schedules(collect_schedules(range(1, n + 1)))
        assert len(maps) == expected

    def test_every_collect_view_contains_self(self):
        for view_map in view_maps_of_schedules(collect_schedules([1, 2, 3])):
            for process, view in view_map.items():
                assert process in view

    def test_someone_sees_everything_in_collect(self):
        # Condition (3): P_0 = I — the last writer sees every write.
        for view_map in view_maps_of_schedules(collect_schedules([1, 2, 3])):
            assert any(view == fs(1, 2, 3) for view in view_map.values())

    def test_empty_enumerations(self):
        assert list(ordered_partitions([])) == []
        assert list(collect_schedules([])) == []
