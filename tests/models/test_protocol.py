"""Unit tests for the memoized protocol operator Ξ."""

import pytest

from repro.models import ProtocolOperator
from repro.topology import Simplex, SimplicialComplex


@pytest.fixture
def operator(iis):
    return ProtocolOperator(iis)


class TestOfSimplex:
    def test_zero_rounds(self, operator, triangle):
        assert operator.of_simplex(triangle, 0) == SimplicialComplex.from_simplex(
            triangle
        )

    def test_one_round_matches_model(self, operator, iis, triangle):
        # Ξ over σ̄ = the full subdivided simplex (faces included).
        expected = iis.protocol_complex(
            SimplicialComplex.from_simplex(triangle), 1
        )
        assert operator.of_simplex(triangle, 1) == expected

    def test_memoization(self, operator, triangle):
        assert operator.of_simplex(triangle, 2) is operator.of_simplex(
            triangle, 2
        )

    def test_face_protocol_contained_in_facet_protocol(
        self, operator, triangle
    ):
        face = triangle.proj([1, 2])
        face_protocol = operator.of_simplex(face, 1)
        full_protocol = operator.of_simplex(triangle, 1)
        assert face_protocol.simplices <= full_protocol.simplices


class TestOfComplex:
    def test_union_over_simplices(self, operator, triangle):
        base = SimplicialComplex.from_simplex(triangle)
        merged = operator.of_complex(base, 1)
        assert merged == operator.of_simplex(triangle, 1)

    def test_disjoint_inputs(self, operator):
        base = SimplicialComplex(
            [Simplex([(1, "a")]), Simplex([(2, "b")])]
        )
        protocol = operator.of_complex(base, 1)
        assert len(protocol.facets) == 2
        assert protocol.dim == 0


class TestCarriers:
    def test_carrier_table_covers_all_simplices(self, operator, triangle):
        base = SimplicialComplex.from_simplex(triangle)
        table = operator.carriers(base, 1)
        assert set(table) == set(base.simplices)

    def test_carrier_facets_have_input_colors(self, operator, triangle):
        base = SimplicialComplex.from_simplex(triangle)
        table = operator.carriers(base, 1)
        for sigma, facets in table.items():
            for facet in facets:
                assert facet.ids == sigma.ids
