"""Unit tests for affine (facet-restricted) sub-models of IIS."""

import pytest

from repro.errors import ModelError
from repro.models import AffineModel


def drop_synchronous(view_map):
    """Remove the fully synchronous execution (everyone sees everyone)."""
    everyone = frozenset(view_map)
    return not all(view == everyone for view in view_map.values())


def keep_only_synchronous(view_map):
    everyone = frozenset(view_map)
    return all(view == everyone for view in view_map.values())


class TestAffineRestriction:
    def test_restriction_drops_facets(self, iis, triangle):
        affine = AffineModel(iis, drop_synchronous)
        restricted = affine.one_round_complex(triangle)
        full = iis.one_round_complex(triangle)
        assert len(restricted.facets) == len(full.facets) - 1

    def test_solo_preserved_restriction_accepted(self, iis, triangle):
        affine = AffineModel(iis, drop_synchronous)
        assert affine.allows_solo_executions([1, 2, 3])

    def test_solo_killing_restriction_rejected(self, iis):
        affine = AffineModel(iis, keep_only_synchronous)
        with pytest.raises(ModelError):
            affine.view_maps(frozenset({1, 2}))

    def test_solo_killing_allowed_with_flag(self, iis):
        affine = AffineModel(iis, keep_only_synchronous, require_solo=False)
        maps = affine.view_maps(frozenset({1, 2}))
        assert len(maps) == 1  # only the synchronous execution survives

    def test_name_defaults(self, iis):
        assert "affine" in AffineModel(iis, drop_synchronous).name
        assert AffineModel(iis, drop_synchronous, name="custom").name == "custom"

    def test_identity_restriction_equals_base(self, iis, triangle):
        affine = AffineModel(iis, lambda view_map: True)
        assert (
            affine.one_round_complex(triangle).simplices
            == iis.one_round_complex(triangle).simplices
        )

    def test_caching_per_participant_set(self, iis):
        affine = AffineModel(iis, drop_synchronous)
        assert affine.view_maps(frozenset({1, 2})) is affine.view_maps(
            frozenset({1, 2})
        )
